(** Discretized probability distributions and the two operations that
    build makespan distributions: the {e sum} of independent random
    variables (convolution of densities) and their {e maximum} (product of
    CDFs).

    Mirrors the paper's numerical engine: densities sampled on a uniform
    grid (64 points by default, as §V found sufficient), cubic-spline
    resampling between operations, Simpson integration for moments.
    Deterministic quantities are carried exactly as {!const} values rather
    than as degenerate grids. *)

type t
(** A distribution: either an exact point mass or a sampled density. *)

val default_points : int
(** Grid resolution used when [?points] is omitted (64, as in the paper). *)

(** {1 Constructors} *)

val const : float -> t
(** [const v] is the Dirac distribution at [v]. *)

val of_samples_pdf : lo:float -> dx:float -> float array -> t
(** [of_samples_pdf ~lo ~dx pdf] wraps density samples taken at
    [lo, lo+dx, …]; values are clamped at 0 and renormalized. Needs at
    least two samples, [dx > 0], and positive total mass. *)

val of_fn : ?points:int -> lo:float -> hi:float -> (float -> float) -> t
(** [of_fn ~lo ~hi f] samples the (possibly unnormalized) density [f] on
    [\[lo, hi\]] and normalizes. Requires [lo < hi]. *)

(** {1 Inspection} *)

val is_const : t -> bool

val support : t -> float * float
(** Smallest interval carrying all the mass (a point for {!const}). *)

val pdf_at : t -> float -> float
(** Density at a point by spline interpolation; 0 outside the support.
    Raises [Invalid_argument] on a {!const} distribution (no density). *)

val cdf_at : t -> float -> float
(** P(X ≤ x); a step function for {!const}. *)

val to_arrays : t -> float array * float array
(** [(xs, pdf)] of the underlying grid; a {!const} yields a narrow
    two-point spike (useful only for plotting). *)

val cdf_arrays : t -> float array * float array
(** [(xs, cdf)] of the underlying grid. *)

(** {1 Moments and functionals} *)

val mean : t -> float
val variance : t -> float
val std : t -> float

val skewness : t -> float
(** Standardized third central moment ([0] for a point mass or a
    zero-variance grid). Under summation of i.i.d. variables it decays as
    [1/√n] — a sharper CLT-convergence witness than KS. *)

val kurtosis_excess : t -> float
(** Standardized fourth central moment minus 3 (0 for a normal); decays
    as [1/n] under i.i.d. summation. *)

val entropy : t -> float
(** Differential entropy [−∫ f ln f]; [neg_infinity] for {!const}. *)

val quantile : t -> float -> float
(** [quantile d p] with [p ∈ \[0,1\]]. *)

val prob_between : t -> float -> float -> float
(** [prob_between d a b = P(a ≤ X ≤ b)]; 0 when [a > b]. *)

val mean_above : t -> float -> float
(** [mean_above d c = E\[X | X > c\]], the conditional mean of the upper
    tail — the quantity inside the paper's average-lateness metric.
    Returns [c] when the tail mass is (numerically) empty. *)

(** {1 Transformations} *)

val shift : t -> float -> t
(** [shift d c] is the distribution of [X + c]. *)

val scale : t -> float -> t
(** [scale d c] is the distribution of [c·X]; requires [c > 0]. *)

val resample : ?points:int -> t -> t
(** Resample the density onto a fresh uniform grid of [points] samples. *)

val trim : ?eps:float -> ?points:int -> t -> t
(** Drop CDF tails below [eps] (default 1e-9) and resample onto [points]
    samples. The sum/max operations apply this internally so that the
    grid keeps tracking the region that actually carries mass (after many
    sums the support grows linearly but σ only as √k). *)

(** {1 Convolution-chain mode}

    Deep chains of sums converge to a normal; past a configurable depth
    the moment-space fast path replaces the sampled convolution by the
    CLT normal (μ and σ² add exactly), certified per step by the
    Berry–Esseen inequality (see {!Numerics.Convolution.Moment_chain}).
    The switch is process-wide and read once per {!add}; the default
    [Exact] keeps every result — campaign CSVs, served bytes —
    bit-reproducible. *)

type chain_mode =
  | Exact  (** always convolve sampled densities (the default) *)
  | Moment of int
      (** replace a sum by its CLT normal once the combined chain depth
          of the operands reaches the given threshold (≥ 2) *)

val set_chain_mode : chain_mode -> unit
(** Set the process-wide mode. Raises [Invalid_argument] on
    [Moment k] with [k < 2]. *)

val current_chain_mode : unit -> chain_mode

val chain_depth : t -> int
(** Convolution-chain depth of this value: 0 for a point mass, 1 for a
    base grid, [d₁ + d₂] after {!add}, reset to 1 by a maximum (a
    synchronization point restarts the CLT argument). *)

val chain_error_bound : t -> float
(** Accumulated Kolmogorov (sup-CDF) distance bound versus the fully
    exact sampled computation: 0 on every exact-path value; each
    moment-space sum adds its Berry–Esseen step bound. Kolmogorov
    distance is non-expansive under convolution and maxima of
    independent variables, so the bound composes additively. *)

val abs_third_central_moment : t -> float
(** [E|X − μ|³], the Berry–Esseen numerator (0 for a point mass).
    Cached on the grid after the first read. *)

(** {1 Algebra of independent random variables} *)

val add : ?points:int -> t -> t -> t
(** [add d1 d2] is the distribution of [X₁ + X₂] for independent inputs:
    densities are convolved at a common resolution (direct on unboxed
    buffers for small sizes, FFT / overlap–add beyond), then resampled
    to [points]. Under [Moment k] (see {!set_chain_mode}) a sum whose
    combined {!chain_depth} reaches [k] is replaced by its CLT normal
    sampled on μ ± 4σ. *)

val max_indep : ?points:int -> t -> t -> t
(** [max_indep d1 d2] is the distribution of [max(X₁, X₂)] under
    independence: [F = F₁·F₂], i.e. density [f₁F₂ + f₂F₁]. A point mass
    created by truncation against a {!const} is spread over the first grid
    cell (documented approximation). *)

val max_comonotone : ?points:int -> t -> t -> t
(** [max_comonotone d1 d2] is the distribution of [max(X₁, X₂)] under
    perfect positive dependence: [F = min(F₁, F₂)]. Since
    [P(max ≤ x) ≤ min(F₁(x), F₂(x))] holds for {e any} dependence, this
    is the stochastically smallest possible maximum — the other end of
    the Kleindorfer-style bracket whose independent end is
    {!max_indep}. Note [max_comonotone d d = d]. *)

val add_list : ?points:int -> t list -> t
(** Fold of {!add}; the empty list is [const 0.]. *)

val max_list : ?points:int -> t list -> t
(** Fold of {!max_indep}; raises [Invalid_argument] on the empty list. *)
