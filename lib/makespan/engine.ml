(* One evaluation context per (graph × platform × model) case.

   Everything that is invariant across the thousands of schedules of a
   case is computed once and cached here:
   - the (task × proc) duration-distribution table (filled lazily: a
     single-schedule evaluation touches only n of the n×m cells, a sweep
     eventually fills the table);
   - communication distributions, memoized by their deterministic weight
     [latency + volume·τ] — the distribution of a perturbed weight
     depends only on that scalar, so this key subsumes
     (volume, src_proc, dst_proc) and collapses homogeneous-network
     pairs into one entry;
   - exact (mean, std) moment tables for Spelde and the slack levels.

   Mutable caches are guarded by one mutex (lookups are cheap next to a
   64-point grid construction; distribution builds happen outside the
   lock, a benign duplicated build under a race). Scratch buffers —
   completion arrays for the classical sweep and moment arrays for
   Spelde — live in domain-local storage so parallel sweeps neither
   race nor allocate per schedule. *)

type backend =
  | Classical
  | Dodin
  | Spelde
  | Montecarlo of { count : int; seed : int64 }

let backend_of_method = function
  | Eval.Classical -> Classical
  | Eval.Dodin -> Dodin
  | Eval.Spelde -> Spelde

let backend_name = function
  | Classical -> "classical"
  | Dodin -> "dodin"
  | Spelde -> "spelde"
  | Montecarlo _ -> "montecarlo"

let backend_of_name ?(mc_count = 10_000) ?(mc_seed = 0L) name =
  match String.lowercase_ascii name with
  | "classical" -> Some Classical
  | "dodin" -> Some Dodin
  | "spelde" -> Some Spelde
  | "montecarlo" | "mc" -> Some (Montecarlo { count = mc_count; seed = mc_seed })
  | _ -> None

type stats = {
  task_hits : int;
  task_misses : int;  (** filled (task, proc) duration cells *)
  comm_hits : int;
  comm_misses : int;  (** distinct communication weights built *)
  evals : int;
  evals_classical : int;
  evals_dodin : int;
  evals_spelde : int;
  evals_montecarlo : int;
}

(* Global observability mirrors of the per-engine counters: every engine
   feeds the same process-wide registry, so `repro --metrics` sees the
   whole sweep without holding on to engines. No-ops (one atomic load)
   unless metrics are enabled. *)
let m_task_hits = Obs.Metrics.counter "engine.task_hits"
let m_task_misses = Obs.Metrics.counter "engine.task_misses"
let m_comm_hits = Obs.Metrics.counter "engine.comm_hits"
let m_comm_misses = Obs.Metrics.counter "engine.comm_misses"
let m_evals_classical = Obs.Metrics.counter "engine.evals.classical"
let m_evals_dodin = Obs.Metrics.counter "engine.evals.dodin"
let m_evals_spelde = Obs.Metrics.counter "engine.evals.spelde"
let m_evals_montecarlo = Obs.Metrics.counter "engine.evals.montecarlo"

let span_name = function
  | Classical -> "engine.eval.classical"
  | Dodin -> "engine.eval.dodin"
  | Spelde -> "engine.eval.spelde"
  | Montecarlo _ -> "engine.eval.montecarlo"

type scratch = {
  mutable dists : Distribution.Dist.t array;
  mutable pairs : Distribution.Normal_pair.t array;
}

type t = {
  graph : Dag.Graph.t;
  platform : Platform.t;
  model : Workloads.Stochastify.t;
  points : int;
  n_tasks : int;
  n_procs : int;
  task_means : float array array;
  task_stds : float array array;
  task_tbl : Distribution.Dist.t option array array;
  comm_tbl : (float, Distribution.Dist.t) Hashtbl.t;
  lock : Mutex.t;
  task_hits : int Atomic.t;
  task_misses : int Atomic.t;
  comm_hits : int Atomic.t;
  comm_misses : int Atomic.t;
  evals : int Atomic.t;
  evals_by_backend : int Atomic.t array; (* Classical, Dodin, Spelde, Montecarlo *)
  scratch : scratch Domain.DLS.key;
}

let backend_slot = function
  | Classical -> 0
  | Dodin -> 1
  | Spelde -> 2
  | Montecarlo _ -> 3

let create ~graph ~platform ~model =
  let n_tasks = Dag.Graph.n_tasks graph in
  if Platform.n_tasks platform <> n_tasks then
    invalid_arg "Engine.create: platform/graph task-count mismatch";
  let n_procs = Platform.n_procs platform in
  {
    graph;
    platform;
    model;
    points = model.Workloads.Stochastify.points;
    n_tasks;
    n_procs;
    task_means =
      Array.init n_tasks (fun task ->
          Array.init n_procs (fun proc ->
              Workloads.Stochastify.task_mean model platform ~task ~proc));
    task_stds =
      Array.init n_tasks (fun task ->
          Array.init n_procs (fun proc ->
              Workloads.Stochastify.task_std model platform ~task ~proc));
    task_tbl = Array.init n_tasks (fun _ -> Array.make n_procs None);
    comm_tbl = Hashtbl.create 64;
    lock = Mutex.create ();
    task_hits = Atomic.make 0;
    task_misses = Atomic.make 0;
    comm_hits = Atomic.make 0;
    comm_misses = Atomic.make 0;
    evals = Atomic.make 0;
    evals_by_backend = Array.init 4 (fun _ -> Atomic.make 0);
    scratch = Domain.DLS.new_key (fun () -> { dists = [||]; pairs = [||] });
  }

let graph t = t.graph
let platform t = t.platform
let model t = t.model

let stats t =
  {
    task_hits = Atomic.get t.task_hits;
    task_misses = Atomic.get t.task_misses;
    comm_hits = Atomic.get t.comm_hits;
    comm_misses = Atomic.get t.comm_misses;
    evals = Atomic.get t.evals;
    evals_classical = Atomic.get t.evals_by_backend.(0);
    evals_dodin = Atomic.get t.evals_by_backend.(1);
    evals_spelde = Atomic.get t.evals_by_backend.(2);
    evals_montecarlo = Atomic.get t.evals_by_backend.(3);
  }

let reset_stats t =
  Atomic.set t.task_hits 0;
  Atomic.set t.task_misses 0;
  Atomic.set t.comm_hits 0;
  Atomic.set t.comm_misses 0;
  Atomic.set t.evals 0;
  Array.iter (fun a -> Atomic.set a 0) t.evals_by_backend

(* ------------------------------------------------------------------ *)
(* Cached distribution views                                           *)
(* ------------------------------------------------------------------ *)

let task_dist t ~task ~proc =
  let cell = Mutex.protect t.lock (fun () -> t.task_tbl.(task).(proc)) in
  match cell with
  | Some d ->
    Atomic.incr t.task_hits;
    Obs.Metrics.incr m_task_hits;
    d
  | None ->
    Atomic.incr t.task_misses;
    Obs.Metrics.incr m_task_misses;
    let d = Workloads.Stochastify.task_dist t.model t.platform ~task ~proc in
    Mutex.protect t.lock (fun () ->
        match t.task_tbl.(task).(proc) with
        | Some d' -> d' (* another domain won the race; keep its value *)
        | None ->
          t.task_tbl.(task).(proc) <- Some d;
          d)

let comm_dist t ~volume ~src ~dst =
  let w = Platform.comm_time t.platform ~src ~dst ~volume in
  if w = 0. then Distribution.Dist.const 0.
  else
    let cached = Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.comm_tbl w) in
    match cached with
    | Some d ->
      Atomic.incr t.comm_hits;
      Obs.Metrics.incr m_comm_hits;
      d
    | None ->
      Atomic.incr t.comm_misses;
      Obs.Metrics.incr m_comm_misses;
      let d = Workloads.Stochastify.dist t.model w in
      Mutex.protect t.lock (fun () ->
          match Hashtbl.find_opt t.comm_tbl w with
          | Some d' -> d'
          | None ->
            Hashtbl.add t.comm_tbl w d;
            d)

let task_mean t ~task ~proc = t.task_means.(task).(proc)
let task_std t ~task ~proc = t.task_stds.(task).(proc)

let comm_mean t ~volume ~src ~dst =
  Workloads.Stochastify.comm_mean t.model t.platform ~volume ~src ~dst

let comm_std t ~volume ~src ~dst =
  Workloads.Stochastify.comm_std t.model t.platform ~volume ~src ~dst

let mean_weights t sched =
  let proc_of = sched.Sched.Schedule.proc_of in
  {
    Dag.Levels.task = (fun v -> t.task_means.(v).(proc_of.(v)));
    edge =
      (fun u v ->
        match Dag.Graph.volume sched.Sched.Schedule.graph ~src:u ~dst:v with
        | None -> 0.
        | Some volume -> comm_mean t ~volume ~src:proc_of.(u) ~dst:proc_of.(v));
  }

(* ------------------------------------------------------------------ *)
(* Scratch buffers                                                     *)
(* ------------------------------------------------------------------ *)

let scratch_dists t n =
  let s = Domain.DLS.get t.scratch in
  if Array.length s.dists < n then s.dists <- Array.make n (Distribution.Dist.const 0.);
  s.dists

let scratch_pairs t n =
  let s = Domain.DLS.get t.scratch in
  if Array.length s.pairs < n then
    s.pairs <- Array.make n (Distribution.Normal_pair.const 0.);
  s.pairs

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let check_schedule t sched =
  if Dag.Graph.n_tasks sched.Sched.Schedule.graph <> t.n_tasks then
    invalid_arg "Engine: schedule belongs to a different case (task-count mismatch)"

let completion_dists t ~dgraph sched =
  Classic.completion_dists_with ~points:t.points ~dgraph
    ~completion:(scratch_dists t (Dag.Graph.n_tasks dgraph))
    ~task_dist:(fun ~task ~proc -> task_dist t ~task ~proc)
    ~comm_dist:(fun ~volume ~src ~dst -> comm_dist t ~volume ~src ~dst)
    sched

let dist_of_backend t ~dgraph backend sched =
  match backend with
  | Classical ->
    Classic.makespan_of_exits ~points:t.points dgraph (completion_dists t ~dgraph sched)
  | Dodin ->
    (Dodin.evaluate_with ~points:t.points ~dgraph
       ~task_dist:(fun ~task ~proc -> task_dist t ~task ~proc)
       ~comm_dist:(fun ~volume ~src ~dst -> comm_dist t ~volume ~src ~dst)
       sched)
      .Dodin.dist
  | Spelde ->
    let m =
      Spelde.moments_with ~dgraph
        ~completion:(scratch_pairs t (Dag.Graph.n_tasks dgraph))
        ~task_moments:(fun ~task ~proc ->
          Distribution.Normal_pair.make ~mean:(task_mean t ~task ~proc)
            ~std:(task_std t ~task ~proc))
        ~comm_moments:(fun ~volume ~src ~dst ->
          Distribution.Normal_pair.make ~mean:(comm_mean t ~volume ~src ~dst)
            ~std:(comm_std t ~volume ~src ~dst))
        sched
    in
    Distribution.Normal_pair.to_normal ~points:t.points m
  | Montecarlo { count; seed } ->
    let rng = Prng.Xoshiro.create seed in
    Distribution.Empirical.to_dist ~points:t.points
      (Montecarlo.run ~rng ~count sched t.platform t.model)

let count_eval t backend =
  Atomic.incr t.evals;
  Atomic.incr t.evals_by_backend.(backend_slot backend);
  match backend with
  | Classical -> Obs.Metrics.incr m_evals_classical
  | Dodin -> Obs.Metrics.incr m_evals_dodin
  | Spelde -> Obs.Metrics.incr m_evals_spelde
  | Montecarlo _ -> Obs.Metrics.incr m_evals_montecarlo

let eval_dist t backend sched =
  let dgraph = Sched.Disjunctive.graph_of sched in
  dist_of_backend t ~dgraph backend sched

let eval ?(backend = Classical) t sched =
  check_schedule t sched;
  count_eval t backend;
  if Obs.Span.enabled () then
    Obs.Span.with_ ~name:(span_name backend) (fun () -> eval_dist t backend sched)
  else eval_dist t backend sched

type evaluation = {
  makespan : Distribution.Dist.t;
  slack : Sched.Slack.summary;
}

let analyze_parts t backend slack_mode sched =
  let dgraph = Sched.Disjunctive.graph_of sched in
  let makespan = dist_of_backend t ~dgraph backend sched in
  let slack () =
    match slack_mode with
    | `Disjunctive -> Sched.Slack.of_weighted_graph dgraph (mean_weights t sched)
    | `Precedence -> Sched.Slack.compute ~mode:`Precedence sched t.platform t.model
  in
  let slack =
    if Obs.Span.enabled () then Obs.Span.with_ ~name:"engine.slack" slack else slack ()
  in
  { makespan; slack }

let analyze ?(backend = Classical) ?(slack_mode = `Disjunctive) t sched =
  check_schedule t sched;
  count_eval t backend;
  if Obs.Span.enabled () then
    Obs.Span.with_ ~name:(span_name backend) (fun () ->
        analyze_parts t backend slack_mode sched)
  else analyze_parts t backend slack_mode sched
