(* One evaluation context per (graph × platform × model) case.

   Everything that is invariant across the thousands of schedules of a
   case is computed once and cached here:
   - the (task × proc) duration-distribution table (filled lazily: a
     single-schedule evaluation touches only n of the n×m cells, a sweep
     eventually fills the table);
   - communication distributions, memoized by their deterministic weight
     [latency + volume·τ] — the distribution of a perturbed weight
     depends only on that scalar, so this key subsumes
     (volume, src_proc, dst_proc) and collapses homogeneous-network
     pairs into one entry;
   - exact (mean, std) moment tables for Spelde and the slack levels.

   Mutable caches are guarded by one mutex (lookups are cheap next to a
   64-point grid construction; distribution builds happen outside the
   lock, a benign duplicated build under a race). Scratch buffers —
   completion arrays for the classical sweep and moment arrays for
   Spelde — live in domain-local storage so parallel sweeps neither
   race nor allocate per schedule. *)

type backend =
  | Classical
  | Dodin
  | Spelde
  | Montecarlo of { count : int; seed : int64 }

let backend_of_method = function
  | Eval.Classical -> Classical
  | Eval.Dodin -> Dodin
  | Eval.Spelde -> Spelde

let backend_name = function
  | Classical -> "classical"
  | Dodin -> "dodin"
  | Spelde -> "spelde"
  | Montecarlo _ -> "montecarlo"

let backend_of_name ?(mc_count = 10_000) ?(mc_seed = 0L) name =
  match String.lowercase_ascii name with
  | "classical" -> Some Classical
  | "dodin" -> Some Dodin
  | "spelde" -> Some Spelde
  | "montecarlo" | "mc" -> Some (Montecarlo { count = mc_count; seed = mc_seed })
  | _ -> None

type stats = {
  task_hits : int;
  task_misses : int;  (** filled (task, proc) duration cells *)
  comm_hits : int;
  comm_misses : int;  (** distinct communication weights built *)
  evals : int;
  evals_classical : int;
  evals_dodin : int;
  evals_spelde : int;
  evals_montecarlo : int;
  reevals : int;
  reeval_incremental : int;
  reeval_full : int;  (** all full-sweep fallbacks = [reeval_full_cone + reeval_full_backend] *)
  reeval_full_cone : int;  (** fallbacks where the dirty cone exceeded [max_cone] *)
  reeval_full_backend : int;  (** fallbacks on non-incremental backends (Dodin, Monte Carlo) *)
  reeval_cone_nodes : int;
  reeval_max_cone : int;
}

(* Global observability mirrors of the per-engine counters: every engine
   feeds the same process-wide registry, so `repro --metrics` sees the
   whole sweep without holding on to engines. No-ops (one atomic load)
   unless metrics are enabled. *)
let m_task_hits = Obs.Metrics.counter "engine.task_hits"
let m_task_misses = Obs.Metrics.counter "engine.task_misses"
let m_comm_hits = Obs.Metrics.counter "engine.comm_hits"
let m_comm_misses = Obs.Metrics.counter "engine.comm_misses"
let m_evals_classical = Obs.Metrics.counter "engine.evals.classical"
let m_evals_dodin = Obs.Metrics.counter "engine.evals.dodin"
let m_evals_spelde = Obs.Metrics.counter "engine.evals.spelde"
let m_evals_montecarlo = Obs.Metrics.counter "engine.evals.montecarlo"
let m_reeval_incremental = Obs.Metrics.counter "engine.reeval_incremental"
let m_reeval_full = Obs.Metrics.counter "engine.reeval_full"
let m_reeval_full_cone = Obs.Metrics.counter "engine.reeval_full_cone"
let m_reeval_full_backend = Obs.Metrics.counter "engine.reeval_full_backend"
let m_reeval_cone_nodes = Obs.Metrics.counter "engine.reeval_cone_nodes"

let span_name = function
  | Classical -> "engine.eval.classical"
  | Dodin -> "engine.eval.dodin"
  | Spelde -> "engine.eval.spelde"
  | Montecarlo _ -> "engine.eval.montecarlo"

type scratch = {
  mutable dists : Distribution.Dist.t array;
  mutable pairs : Distribution.Normal_pair.t array;
}

type t = {
  graph : Dag.Graph.t;
  platform : Platform.t;
  model : Workloads.Stochastify.t;
  points : int;
  n_tasks : int;
  n_procs : int;
  task_means : float array array;
  task_stds : float array array;
  task_tbl : Distribution.Dist.t option array array;
  comm_tbl : (float, Distribution.Dist.t) Hashtbl.t;
  lock : Mutex.t;
  task_hits : int Atomic.t;
  task_misses : int Atomic.t;
  comm_hits : int Atomic.t;
  comm_misses : int Atomic.t;
  evals : int Atomic.t;
  evals_by_backend : int Atomic.t array; (* Classical, Dodin, Spelde, Montecarlo *)
  reevals : int Atomic.t;
  reeval_incremental : int Atomic.t;
  reeval_full_cone : int Atomic.t;
  reeval_full_backend : int Atomic.t;
  reeval_cone_nodes : int Atomic.t;
  reeval_max_cone : int Atomic.t;
  scratch : scratch Domain.DLS.key;
}

let backend_slot = function
  | Classical -> 0
  | Dodin -> 1
  | Spelde -> 2
  | Montecarlo _ -> 3

let create ~graph ~platform ~model =
  let n_tasks = Dag.Graph.n_tasks graph in
  if Platform.n_tasks platform <> n_tasks then
    invalid_arg "Engine.create: platform/graph task-count mismatch";
  let n_procs = Platform.n_procs platform in
  {
    graph;
    platform;
    model;
    points = model.Workloads.Stochastify.points;
    n_tasks;
    n_procs;
    task_means =
      Array.init n_tasks (fun task ->
          Array.init n_procs (fun proc ->
              Workloads.Stochastify.task_mean model platform ~task ~proc));
    task_stds =
      Array.init n_tasks (fun task ->
          Array.init n_procs (fun proc ->
              Workloads.Stochastify.task_std model platform ~task ~proc));
    task_tbl = Array.init n_tasks (fun _ -> Array.make n_procs None);
    comm_tbl = Hashtbl.create 64;
    lock = Mutex.create ();
    task_hits = Atomic.make 0;
    task_misses = Atomic.make 0;
    comm_hits = Atomic.make 0;
    comm_misses = Atomic.make 0;
    evals = Atomic.make 0;
    evals_by_backend = Array.init 4 (fun _ -> Atomic.make 0);
    reevals = Atomic.make 0;
    reeval_incremental = Atomic.make 0;
    reeval_full_cone = Atomic.make 0;
    reeval_full_backend = Atomic.make 0;
    reeval_cone_nodes = Atomic.make 0;
    reeval_max_cone = Atomic.make 0;
    scratch = Domain.DLS.new_key (fun () -> { dists = [||]; pairs = [||] });
  }

let graph t = t.graph
let platform t = t.platform
let model t = t.model

let stats t =
  {
    task_hits = Atomic.get t.task_hits;
    task_misses = Atomic.get t.task_misses;
    comm_hits = Atomic.get t.comm_hits;
    comm_misses = Atomic.get t.comm_misses;
    evals = Atomic.get t.evals;
    evals_classical = Atomic.get t.evals_by_backend.(0);
    evals_dodin = Atomic.get t.evals_by_backend.(1);
    evals_spelde = Atomic.get t.evals_by_backend.(2);
    evals_montecarlo = Atomic.get t.evals_by_backend.(3);
    reevals = Atomic.get t.reevals;
    reeval_incremental = Atomic.get t.reeval_incremental;
    reeval_full = Atomic.get t.reeval_full_cone + Atomic.get t.reeval_full_backend;
    reeval_full_cone = Atomic.get t.reeval_full_cone;
    reeval_full_backend = Atomic.get t.reeval_full_backend;
    reeval_cone_nodes = Atomic.get t.reeval_cone_nodes;
    reeval_max_cone = Atomic.get t.reeval_max_cone;
  }

let reset_stats t =
  Atomic.set t.task_hits 0;
  Atomic.set t.task_misses 0;
  Atomic.set t.comm_hits 0;
  Atomic.set t.comm_misses 0;
  Atomic.set t.evals 0;
  Array.iter (fun a -> Atomic.set a 0) t.evals_by_backend;
  (* the reeval/cone counters are part of the same phase measurement and
     must reset with the rest, or back-to-back benchmark phases inherit
     ghost cone totals *)
  Atomic.set t.reevals 0;
  Atomic.set t.reeval_incremental 0;
  Atomic.set t.reeval_full_cone 0;
  Atomic.set t.reeval_full_backend 0;
  Atomic.set t.reeval_cone_nodes 0;
  Atomic.set t.reeval_max_cone 0

(* ------------------------------------------------------------------ *)
(* Cached distribution views                                           *)
(* ------------------------------------------------------------------ *)

let task_dist t ~task ~proc =
  let cell = Mutex.protect t.lock (fun () -> t.task_tbl.(task).(proc)) in
  match cell with
  | Some d ->
    Atomic.incr t.task_hits;
    Obs.Metrics.incr m_task_hits;
    d
  | None ->
    Atomic.incr t.task_misses;
    Obs.Metrics.incr m_task_misses;
    let d = Workloads.Stochastify.task_dist t.model t.platform ~task ~proc in
    Mutex.protect t.lock (fun () ->
        match t.task_tbl.(task).(proc) with
        | Some d' -> d' (* another domain won the race; keep its value *)
        | None ->
          t.task_tbl.(task).(proc) <- Some d;
          d)

let comm_dist t ~volume ~src ~dst =
  let w = Platform.comm_time t.platform ~src ~dst ~volume in
  if w = 0. then Distribution.Dist.const 0.
  else
    let cached = Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.comm_tbl w) in
    match cached with
    | Some d ->
      Atomic.incr t.comm_hits;
      Obs.Metrics.incr m_comm_hits;
      d
    | None ->
      Atomic.incr t.comm_misses;
      Obs.Metrics.incr m_comm_misses;
      let d = Workloads.Stochastify.dist t.model w in
      Mutex.protect t.lock (fun () ->
          match Hashtbl.find_opt t.comm_tbl w with
          | Some d' -> d'
          | None ->
            Hashtbl.add t.comm_tbl w d;
            d)

let task_mean t ~task ~proc = t.task_means.(task).(proc)
let task_std t ~task ~proc = t.task_stds.(task).(proc)

let comm_mean t ~volume ~src ~dst =
  Workloads.Stochastify.comm_mean t.model t.platform ~volume ~src ~dst

let comm_std t ~volume ~src ~dst =
  Workloads.Stochastify.comm_std t.model t.platform ~volume ~src ~dst

let mean_weights t sched =
  let proc_of = sched.Sched.Schedule.proc_of in
  {
    Dag.Levels.task = (fun v -> t.task_means.(v).(proc_of.(v)));
    edge =
      (fun u v ->
        match Dag.Graph.volume sched.Sched.Schedule.graph ~src:u ~dst:v with
        | None -> 0.
        | Some volume -> comm_mean t ~volume ~src:proc_of.(u) ~dst:proc_of.(v));
  }

(* ------------------------------------------------------------------ *)
(* Scratch buffers                                                     *)
(* ------------------------------------------------------------------ *)

let scratch_dists t n =
  let s = Domain.DLS.get t.scratch in
  if Array.length s.dists < n then s.dists <- Array.make n (Distribution.Dist.const 0.);
  s.dists

let scratch_pairs t n =
  let s = Domain.DLS.get t.scratch in
  if Array.length s.pairs < n then
    s.pairs <- Array.make n (Distribution.Normal_pair.const 0.);
  s.pairs

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let check_schedule t sched =
  if Dag.Graph.n_tasks sched.Sched.Schedule.graph <> t.n_tasks then
    invalid_arg "Engine: schedule belongs to a different case (task-count mismatch)"

let completion_dists t ~dgraph sched =
  Classic.completion_dists_with ~points:t.points ~dgraph
    ~completion:(scratch_dists t (Dag.Graph.n_tasks dgraph))
    ~task_dist:(fun ~task ~proc -> task_dist t ~task ~proc)
    ~comm_dist:(fun ~volume ~src ~dst -> comm_dist t ~volume ~src ~dst)
    sched

let dist_of_backend t ~dgraph backend sched =
  match backend with
  | Classical ->
    Classic.makespan_of_exits ~points:t.points dgraph (completion_dists t ~dgraph sched)
  | Dodin ->
    (Dodin.evaluate_with ~points:t.points ~dgraph
       ~task_dist:(fun ~task ~proc -> task_dist t ~task ~proc)
       ~comm_dist:(fun ~volume ~src ~dst -> comm_dist t ~volume ~src ~dst)
       sched)
      .Dodin.dist
  | Spelde ->
    let m =
      Spelde.moments_with ~dgraph
        ~completion:(scratch_pairs t (Dag.Graph.n_tasks dgraph))
        ~task_moments:(fun ~task ~proc ->
          Distribution.Normal_pair.make ~mean:(task_mean t ~task ~proc)
            ~std:(task_std t ~task ~proc))
        ~comm_moments:(fun ~volume ~src ~dst ->
          Distribution.Normal_pair.make ~mean:(comm_mean t ~volume ~src ~dst)
            ~std:(comm_std t ~volume ~src ~dst))
        sched
    in
    Distribution.Normal_pair.to_normal ~points:t.points m
  | Montecarlo { count; seed } ->
    let rng = Prng.Xoshiro.create seed in
    Distribution.Empirical.to_dist ~points:t.points
      (Montecarlo.run ~rng ~count sched t.platform t.model)

let count_eval t backend =
  Atomic.incr t.evals;
  Atomic.incr t.evals_by_backend.(backend_slot backend);
  match backend with
  | Classical -> Obs.Metrics.incr m_evals_classical
  | Dodin -> Obs.Metrics.incr m_evals_dodin
  | Spelde -> Obs.Metrics.incr m_evals_spelde
  | Montecarlo _ -> Obs.Metrics.incr m_evals_montecarlo

let eval_dist t backend sched =
  let dgraph = Sched.Disjunctive.graph_of sched in
  dist_of_backend t ~dgraph backend sched

let eval ?(backend = Classical) t sched =
  check_schedule t sched;
  count_eval t backend;
  if Obs.Span.enabled () then
    Obs.Span.with_ ~name:(span_name backend) (fun () -> eval_dist t backend sched)
  else eval_dist t backend sched

type evaluation = {
  makespan : Distribution.Dist.t;
  slack : Sched.Slack.summary;
}

let slack_of t slack_mode ~dgraph sched =
  let slack () =
    match slack_mode with
    | `Disjunctive -> Sched.Slack.of_weighted_graph dgraph (mean_weights t sched)
    | `Precedence -> Sched.Slack.compute ~mode:`Precedence sched t.platform t.model
  in
  if Obs.Span.enabled () then Obs.Span.with_ ~name:"engine.slack" slack else slack ()

let analyze_parts t backend slack_mode sched =
  let dgraph = Sched.Disjunctive.graph_of sched in
  let makespan = dist_of_backend t ~dgraph backend sched in
  let slack = slack_of t slack_mode ~dgraph sched in
  { makespan; slack }

let analyze ?(backend = Classical) ?(slack_mode = `Disjunctive) t sched =
  check_schedule t sched;
  count_eval t backend;
  if Obs.Span.enabled () then
    Obs.Span.with_ ~name:(span_name backend) (fun () ->
        analyze_parts t backend slack_mode sched)
  else analyze_parts t backend slack_mode sched

(* ------------------------------------------------------------------ *)
(* Incremental re-evaluation                                           *)
(* ------------------------------------------------------------------ *)

(* A session pins one schedule of the case and keeps its per-node
   completion state (distributions for Classical, moments for Spelde)
   alive between evaluations, so a one-task move only recomputes the
   dirty downstream cone. Sessions own their arrays — they never touch
   the engine's domain-local scratch, which full [analyze] calls keep
   using — but they are NOT thread-safe: use one session per domain.

   Dirty cone, for a move of task [m] from processor rows (o → d) with
   old disjunctive graph G and patched graph G':
     seeds  = { m } ∪ { v | preds_G'(v) ≠ preds_G(v) as task sequences }
     dirty  = downward closure of seeds under G' successors
   Seeds cover every input change of the classical recursion: the moved
   task's duration and incoming-comm processors change at [m] itself;
   outgoing-comm source-processor changes surface at successors of [m],
   which the closure marks dirty because [m] is; and any node whose
   disjunctive predecessor list grew, shrank, or reordered is a seed by
   the sequence comparison (pred arrays are sorted by task id, so the
   comparison — and the downstream fold order — is deterministic).
   Everything else sees bitwise-identical inputs and keeps its stored
   value, which is why [reevaluate] agrees bitwise with a fresh
   [analyze] of the patched schedule. *)

type session = {
  engine : t;
  backend : backend;
  slack_mode : Sched.Slack.graph_mode;
  mutable sched : Sched.Schedule.t;
  mutable dgraph : Dag.Graph.t;
  s_completion : Distribution.Dist.t array;  (* Classical; [||] otherwise *)
  s_moments : Distribution.Normal_pair.t array;  (* Spelde; [||] otherwise *)
  dirty : bool array;
  mutable last : evaluation;
}

let session_task_dist t ~task ~proc = task_dist t ~task ~proc
let session_comm_dist t ~volume ~src ~dst = comm_dist t ~volume ~src ~dst

let session_task_moments t ~task ~proc =
  Distribution.Normal_pair.make ~mean:(task_mean t ~task ~proc)
    ~std:(task_std t ~task ~proc)

let session_comm_moments t ~volume ~src ~dst =
  Distribution.Normal_pair.make ~mean:(comm_mean t ~volume ~src ~dst)
    ~std:(comm_std t ~volume ~src ~dst)

(* Full sweep into the session-owned arrays (same bits as the engine's
   scratch-array sweep in [dist_of_backend]). *)
let full_makespan t backend ~dgraph ~completion ~moments sched =
  match backend with
  | Classical ->
    ignore
      (Classic.completion_dists_with ~points:t.points ~dgraph ~completion
         ~task_dist:(fun ~task ~proc -> session_task_dist t ~task ~proc)
         ~comm_dist:(fun ~volume ~src ~dst -> session_comm_dist t ~volume ~src ~dst)
         sched
        : Distribution.Dist.t array);
    Classic.makespan_of_exits ~points:t.points dgraph completion
  | Spelde ->
    let m =
      Spelde.moments_with ~dgraph ~completion:moments
        ~task_moments:(fun ~task ~proc -> session_task_moments t ~task ~proc)
        ~comm_moments:(fun ~volume ~src ~dst -> session_comm_moments t ~volume ~src ~dst)
        sched
    in
    Distribution.Normal_pair.to_normal ~points:t.points m
  | (Dodin | Montecarlo _) as backend -> dist_of_backend t ~dgraph backend sched

let start_session ?(backend = Classical) ?(slack_mode = `Disjunctive) t sched =
  check_schedule t sched;
  count_eval t backend;
  let n = t.n_tasks in
  let dgraph = Sched.Disjunctive.graph_of sched in
  let s_completion =
    match backend with
    | Classical -> Array.make n (Distribution.Dist.const 0.)
    | _ -> [||]
  in
  let s_moments =
    match backend with
    | Spelde -> Array.make n (Distribution.Normal_pair.const 0.)
    | _ -> [||]
  in
  let makespan =
    full_makespan t backend ~dgraph ~completion:s_completion ~moments:s_moments sched
  in
  let slack = slack_of t slack_mode ~dgraph sched in
  {
    engine = t;
    backend;
    slack_mode;
    sched;
    dgraph;
    s_completion;
    s_moments;
    dirty = Array.make n false;
    last = { makespan; slack };
  }

let session_schedule s = s.sched
let session_evaluation s = s.last
let session_backend s = s.backend

let same_pred_seq a b =
  Array.length a = Array.length b
  &&
  let n = Array.length a in
  let rec eq i = i >= n || (fst a.(i) = fst b.(i) && eq (i + 1)) in
  eq 0

let rec bump_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then bump_max a v

(* Mark dirty nodes in [session.dirty]; returns the cone size. [seeds]
   are the tasks whose own timing certainly changed (the moved task for a
   reassign, both tasks for a swap); every node whose disjunctive pred
   sequence changed is seeded too, then the set is closed downward. *)
let mark_dirty_cone session ~seeds ~dgraph' =
  let dirty = session.dirty in
  Array.fill dirty 0 (Array.length dirty) false;
  List.iter (fun v -> dirty.(v) <- true) seeds;
  let n = Array.length dirty in
  for v = 0 to n - 1 do
    if
      (not dirty.(v))
      && not (same_pred_seq (Dag.Graph.preds session.dgraph v) (Dag.Graph.preds dgraph' v))
    then dirty.(v) <- true
  done;
  let cone = ref 0 in
  Array.iter
    (fun v ->
      if not dirty.(v) then begin
        if Array.exists (fun (p, _) -> dirty.(p)) (Dag.Graph.preds dgraph' v) then
          dirty.(v) <- true
      end;
      if dirty.(v) then incr cone)
    (Dag.Graph.topo_order dgraph');
  !cone

(* Shared replay core: [sched'] is the already-patched (hence feasible)
   schedule, [seeds] the tasks whose timing the patch certainly changed.
   Callers construct [sched'] *before* this runs, so an infeasible move
   raises [Invalid_argument] without touching any session state. *)
let reevaluate_patched ~commit ~max_cone session ~seeds sched' =
  let t = session.engine in
  let n = t.n_tasks in
  let max_cone = match max_cone with Some c -> c | None -> max 1 (n / 2) in
  let dgraph' = Sched.Disjunctive.graph_of sched' in
  count_eval t session.backend;
  Atomic.incr t.reevals;
  let incremental_backend =
    match session.backend with Classical | Spelde -> true | Dodin | Montecarlo _ -> false
  in
  let cone = if incremental_backend then mark_dirty_cone session ~seeds ~dgraph' else n in
  let incremental = incremental_backend && cone <= max_cone in
  if incremental then begin
    Atomic.incr t.reeval_incremental;
    ignore (Atomic.fetch_and_add t.reeval_cone_nodes cone : int);
    bump_max t.reeval_max_cone cone;
    Obs.Metrics.incr m_reeval_incremental;
    Obs.Metrics.add m_reeval_cone_nodes cone
  end
  else begin
    if incremental_backend then begin
      Atomic.incr t.reeval_full_cone;
      Obs.Metrics.incr m_reeval_full_cone
    end
    else begin
      Atomic.incr t.reeval_full_backend;
      Obs.Metrics.incr m_reeval_full_backend
    end;
    Obs.Metrics.incr m_reeval_full
  end;
  let saved = ref [] in
  let makespan =
    if incremental then begin
      let dirty = session.dirty in
      (match session.backend with
      | Classical ->
        let completion = session.s_completion in
        Array.iter
          (fun v ->
            if dirty.(v) then begin
              if not commit then saved := (v, `Dist completion.(v)) :: !saved;
              Classic.update_node ~points:t.points ~dgraph:dgraph'
                ~task_dist:(fun ~task ~proc -> session_task_dist t ~task ~proc)
                ~comm_dist:(fun ~volume ~src ~dst -> session_comm_dist t ~volume ~src ~dst)
                sched' completion v
            end)
          (Dag.Graph.topo_order dgraph');
        Classic.makespan_of_exits ~points:t.points dgraph' completion
      | Spelde ->
        let moments = session.s_moments in
        Array.iter
          (fun v ->
            if dirty.(v) then begin
              if not commit then saved := (v, `Pair moments.(v)) :: !saved;
              Spelde.update_node ~dgraph:dgraph'
                ~task_moments:(fun ~task ~proc -> session_task_moments t ~task ~proc)
                ~comm_moments:(fun ~volume ~src ~dst ->
                  session_comm_moments t ~volume ~src ~dst)
                sched' moments v
            end)
          (Dag.Graph.topo_order dgraph');
        Distribution.Normal_pair.to_normal ~points:t.points
          (Spelde.moments_of_exits ~dgraph:dgraph' moments)
      | Dodin | Montecarlo _ -> assert false)
    end
    else if commit then
      full_makespan t session.backend ~dgraph:dgraph' ~completion:session.s_completion
        ~moments:session.s_moments sched'
    else
      (* keep the session arrays intact: run the fallback through the
         engine's domain-local scratch, exactly like [analyze] *)
      dist_of_backend t ~dgraph:dgraph' session.backend sched'
  in
  let slack = slack_of t session.slack_mode ~dgraph:dgraph' sched' in
  let ev = { makespan; slack } in
  if commit then begin
    session.sched <- sched';
    session.dgraph <- dgraph';
    session.last <- ev
  end
  else
    List.iter
      (fun (v, old) ->
        match old with
        | `Dist d -> session.s_completion.(v) <- d
        | `Pair p -> session.s_moments.(v) <- p)
      !saved;
  ev

let reevaluate ?(commit = true) ?max_cone ?at session ~moved ~to_ =
  let sched' = Sched.Schedule.reassign ?at session.sched ~task:moved ~to_ in
  reevaluate_patched ~commit ~max_cone session ~seeds:[ moved ] sched'

let reevaluate_move ?commit ?max_cone session (m : Sched.Neighbor.move) =
  reevaluate ?commit ?max_cone ?at:m.Sched.Neighbor.at session ~moved:m.Sched.Neighbor.task
    ~to_:m.Sched.Neighbor.to_

let reevaluate_swap ?(commit = true) ?max_cone session ~a ~b =
  let sched' = Sched.Schedule.swap session.sched ~a ~b in
  reevaluate_patched ~commit ~max_cone session ~seeds:[ a; b ] sched'

let reevaluate_any ?commit ?max_cone session (m : Sched.Neighbor.any) =
  match m with
  | Sched.Neighbor.Reassign mv -> reevaluate_move ?commit ?max_cone session mv
  | Sched.Neighbor.Swap s ->
    reevaluate_swap ?commit ?max_cone session ~a:s.Sched.Neighbor.a ~b:s.Sched.Neighbor.b
