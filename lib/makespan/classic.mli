(** The “classical” makespan-distribution evaluation (§V): a forward
    sweep over the disjunctive graph that assumes all intermediate
    distributions are independent.

    Completion-time recursion over the schedule's disjunctive graph:
    [ready(t) = max over preds p of (C(p) + comm(p→t))] (CDF product for
    the max, convolution for the sum), then [C(t) = ready(t) + dur(t)].
    The makespan is the max over exit completions. This is exactly the
    method the paper selected after finding it as accurate as Dodin's and
    Spelde's on its cases (its degradation with graph size is Fig. 1). *)

val update_node :
  points:int ->
  dgraph:Dag.Graph.t ->
  task_dist:(task:int -> proc:int -> Distribution.Dist.t) ->
  comm_dist:(volume:float -> src:int -> dst:int -> Distribution.Dist.t) ->
  Sched.Schedule.t ->
  Distribution.Dist.t array ->
  int ->
  unit
(** Recompute one node's completion distribution in place from its
    predecessors' entries in the given array — the single-node body of
    {!completion_dists_with}, exposed so {!Engine.reevaluate} can replay
    just a dirty cone and still produce bitwise-identical results (the
    fold order over [Dag.Graph.preds] is the deterministic sorted
    order). *)

val completion_dists_with :
  points:int ->
  dgraph:Dag.Graph.t ->
  ?completion:Distribution.Dist.t array ->
  task_dist:(task:int -> proc:int -> Distribution.Dist.t) ->
  comm_dist:(volume:float -> src:int -> dst:int -> Distribution.Dist.t) ->
  Sched.Schedule.t ->
  Distribution.Dist.t array
(** The propagation with injected duration/communication distributions —
    the shared core behind both {!completion_dists} and the cached
    {!Engine} path. [dgraph] must be the schedule's disjunctive graph.
    When [?completion] is given and long enough it is used as scratch and
    returned (entries beyond the task count are left untouched);
    otherwise a fresh array is allocated. *)

val makespan_of_exits :
  points:int -> Dag.Graph.t -> Distribution.Dist.t array -> Distribution.Dist.t
(** Maximum of the exit tasks' completion distributions. *)

val completion_dists :
  Sched.Schedule.t -> Platform.t -> Workloads.Stochastify.t -> Distribution.Dist.t array
(** Per-task completion-time distributions under independence. *)

val run : Sched.Schedule.t -> Platform.t -> Workloads.Stochastify.t -> Distribution.Dist.t
(** The makespan distribution. *)