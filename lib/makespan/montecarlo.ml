(* Cumulative sampling telemetry: counters feed `--metrics`, the gauge
   holds the cumulative samples/sec over every run so far. The atomics
   back the gauge so the rate survives without reading the registry. *)
let m_samples = Obs.Metrics.counter "montecarlo.samples"
let m_elapsed_us = Obs.Metrics.counter "montecarlo.elapsed_us"
let g_rate = Obs.Metrics.gauge "montecarlo.samples_per_sec"
let total_samples = Atomic.make 0
let total_us = Atomic.make 0

let realizations ?domains ?(chunk_size = 256) ?(antithetic = false) ~rng ~count sched
    platform model =
  if count <= 0 then invalid_arg "Montecarlo: count must be positive";
  if chunk_size <= 0 then invalid_arg "Montecarlo: chunk_size must be positive";
  let instrumented = Obs.Metrics.enabled () in
  let t_start = if instrumented then Unix.gettimeofday () else 0. in
  let count = if antithetic && count mod 2 = 1 then count + 1 else count in
  let chunk_size = if antithetic && chunk_size mod 2 = 1 then chunk_size + 1 else chunk_size in
  let plan = Sched.Simulator.prepare sched in
  let graph = sched.Sched.Schedule.graph in
  let proc_of = sched.Sched.Schedule.proc_of in
  let n = Dag.Graph.n_tasks graph in
  (* Pre-resolve edges once; sampling and lookup then avoid the graph. *)
  let edges = Dag.Graph.edges graph in
  let n_edges = Array.length edges in
  let edge_index = Hashtbl.create n_edges in
  Array.iteri (fun i (u, v, _) -> Hashtbl.add edge_index (u, v) i) edges;
  let chunks = (count + chunk_size - 1) / chunk_size in
  (* one deterministic stream per chunk, independent of the domain count *)
  let streams = Array.init chunks (fun _ -> Prng.Xoshiro.split rng) in
  let out = Array.make count 0. in
  let run_chunks () =
    Parallel.Pool.run ?domains ~chunks (fun c ->
      let chunk_rng = streams.(c) in
      let lo = c * chunk_size in
      let hi = Int.min count (lo + chunk_size) in
      (* per-realization duration tables, reused across the chunk *)
      let task_dur = Array.make n 0. in
      let comm_dur = Array.make n_edges 0. in
      let task_dur_fn v = task_dur.(v) in
      let comm_dur_fn u v =
        match Hashtbl.find_opt edge_index (u, v) with
        | Some i -> comm_dur.(i)
        | None -> invalid_arg "Montecarlo: comm on non-edge"
      in
      if antithetic then begin
        (* negatively correlated pairs through the quantile map *)
        let task_u = Array.make n 0. in
        let comm_u = Array.make n_edges 0. in
        let fill_from_u flip =
          let q u = if flip then 1. -. u else u in
          for v = 0 to n - 1 do
            task_dur.(v) <-
              Workloads.Stochastify.task_sample_quantile model ~u:(q task_u.(v)) platform
                ~task:v ~proc:proc_of.(v)
          done;
          for i = 0 to n_edges - 1 do
            let u_, v_, volume = edges.(i) in
            comm_dur.(i) <-
              Workloads.Stochastify.comm_sample_quantile model ~u:(q comm_u.(i)) platform
                ~volume ~src:proc_of.(u_) ~dst:proc_of.(v_)
          done
        in
        let r = ref lo in
        while !r < hi do
          for v = 0 to n - 1 do
            task_u.(v) <- Prng.Xoshiro.next_float chunk_rng
          done;
          for i = 0 to n_edges - 1 do
            comm_u.(i) <- Prng.Xoshiro.next_float chunk_rng
          done;
          fill_from_u false;
          out.(!r) <-
            (Sched.Simulator.run plan ~task_dur:task_dur_fn ~comm_dur:comm_dur_fn)
              .Sched.Simulator.makespan;
          if !r + 1 < hi then begin
            fill_from_u true;
            out.(!r + 1) <-
              (Sched.Simulator.run plan ~task_dur:task_dur_fn ~comm_dur:comm_dur_fn)
                .Sched.Simulator.makespan
          end;
          r := !r + 2
        done
      end
      else
        for r = lo to hi - 1 do
          for v = 0 to n - 1 do
            task_dur.(v) <-
              Workloads.Stochastify.task_sample model chunk_rng platform ~task:v
                ~proc:proc_of.(v)
          done;
          for i = 0 to n_edges - 1 do
            let u, v, volume = edges.(i) in
            comm_dur.(i) <-
              Workloads.Stochastify.comm_sample model chunk_rng platform ~volume
                ~src:proc_of.(u) ~dst:proc_of.(v)
          done;
          let times =
            Sched.Simulator.run plan ~task_dur:task_dur_fn ~comm_dur:comm_dur_fn
          in
          out.(r) <- times.Sched.Simulator.makespan
        done)
  in
  if Obs.Span.enabled () then Obs.Span.with_ ~name:"montecarlo.run" run_chunks
  else run_chunks ();
  if instrumented then begin
    let us = (Unix.gettimeofday () -. t_start) *. 1e6 in
    Obs.Metrics.add m_samples count;
    Obs.Metrics.add m_elapsed_us (int_of_float us);
    let samples = Atomic.fetch_and_add total_samples count + count in
    let elapsed = Atomic.fetch_and_add total_us (int_of_float us) + int_of_float us in
    if elapsed > 0 then
      Obs.Metrics.set g_rate (float_of_int samples /. (float_of_int elapsed /. 1e6))
  end;
  out

let run ?domains ?chunk_size ?antithetic ~rng ~count sched platform model =
  Distribution.Empirical.of_samples
    (realizations ?domains ?chunk_size ?antithetic ~rng ~count sched platform model)
