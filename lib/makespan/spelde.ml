(* Like {!Classic}, the moment propagation is parameterized over the
   duration/communication views so the {!Engine} can feed it from cached
   tables (and reuse a scratch array across schedules of one case). *)

let update_node ~dgraph
    ~(task_moments : task:int -> proc:int -> Distribution.Normal_pair.t)
    ~(comm_moments : volume:float -> src:int -> dst:int -> Distribution.Normal_pair.t)
    sched completion v =
  let open Distribution in
  let graph = sched.Sched.Schedule.graph in
  let proc_of = sched.Sched.Schedule.proc_of in
  let arrivals =
    Array.to_list (Dag.Graph.preds dgraph v)
    |> List.map (fun (p, _) ->
           match Dag.Graph.volume graph ~src:p ~dst:v with
           | None -> completion.(p)
           | Some volume ->
             Normal_pair.add completion.(p)
               (comm_moments ~volume ~src:proc_of.(p) ~dst:proc_of.(v)))
  in
  let ready =
    match arrivals with [] -> Normal_pair.const 0. | ds -> Normal_pair.max_list ds
  in
  completion.(v) <- Normal_pair.add ready (task_moments ~task:v ~proc:proc_of.(v))

let moments_of_exits ~dgraph completion =
  let open Distribution in
  let exits = Dag.Graph.exits dgraph in
  Normal_pair.max_list (Array.to_list (Array.map (fun e -> completion.(e)) exits))

let moments_with ~dgraph ?completion
    ~(task_moments : task:int -> proc:int -> Distribution.Normal_pair.t)
    ~(comm_moments : volume:float -> src:int -> dst:int -> Distribution.Normal_pair.t)
    sched =
  let open Distribution in
  let n = Dag.Graph.n_tasks dgraph in
  let completion =
    match completion with
    | Some a when Array.length a >= n -> a
    | Some _ | None -> Array.make n (Normal_pair.const 0.)
  in
  Array.iter
    (update_node ~dgraph ~task_moments ~comm_moments sched completion)
    (Dag.Graph.topo_order dgraph);
  moments_of_exits ~dgraph completion

let moments sched platform model =
  let dgraph = Sched.Disjunctive.graph_of sched in
  moments_with ~dgraph
    ~task_moments:(fun ~task ~proc ->
      Distribution.Normal_pair.make
        ~mean:(Workloads.Stochastify.task_mean model platform ~task ~proc)
        ~std:(Workloads.Stochastify.task_std model platform ~task ~proc))
    ~comm_moments:(fun ~volume ~src ~dst ->
      Distribution.Normal_pair.make
        ~mean:(Workloads.Stochastify.comm_mean model platform ~volume ~src ~dst)
        ~std:(Workloads.Stochastify.comm_std model platform ~volume ~src ~dst))
    sched

let run sched platform model =
  Distribution.Normal_pair.to_normal ~points:model.Workloads.Stochastify.points
    (moments sched platform model)
