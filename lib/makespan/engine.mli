(** Unified per-case evaluation engine.

    A case of the paper's experiments is one [(graph, platform,
    uncertainty model)] triple over which thousands of schedules are
    evaluated. An engine is created once per case and owns everything
    that is invariant across those schedules:

    - the (task × proc) duration-distribution table, filled lazily as
      evaluations touch cells;
    - memoized communication distributions. The cache key is the
      deterministic communication weight [latency + volume·τ]: the
      perturbed distribution depends only on that scalar, so this key
      subsumes the (volume, src, dst) triple and additionally collapses
      duplicates on homogeneous networks;
    - exact (mean, std) moment tables, shared by Spelde's method and
      the mean-weight slack levels;
    - per-domain scratch buffers (completion-distribution and moment
      arrays), so repeated evaluations stop allocating.

    All four evaluation methods of the paper are exposed as pluggable
    {!backend}s behind the single {!eval} entry point. Engines are safe
    to share across domains ({!Parallel.Par_array} sweeps): caches are
    mutex-guarded, counters atomic, scratch domain-local. *)

type backend =
  | Classical  (** forward sweep under independence (§III-B) *)
  | Dodin  (** series–parallel reduction with duplication (§III-C) *)
  | Spelde  (** normal moments + Clark maxima (§III-D) *)
  | Montecarlo of { count : int; seed : int64 }
      (** ground truth by simulation; deterministic given [seed] *)

val backend_of_method : Eval.method_ -> backend
(** Embedding of the analytic methods enumerated by {!Eval}. *)

val backend_name : backend -> string

val backend_of_name : ?mc_count:int -> ?mc_seed:int64 -> string -> backend option
(** Inverse of {!backend_name} for wire protocols and CLIs
    (case-insensitive; ["mc"] is accepted for ["montecarlo"], whose
    count/seed come from the optional arguments — defaults 10 000 and
    0). [None] on an unknown name. *)

type t

val create :
  graph:Dag.Graph.t -> platform:Platform.t -> model:Workloads.Stochastify.t -> t
(** One engine per case. Raises [Invalid_argument] when the platform's
    ETC matrix does not match the graph's task count. Creation is cheap
    (moment tables only); distribution cells are built on first use. *)

val graph : t -> Dag.Graph.t
val platform : t -> Platform.t
val model : t -> Workloads.Stochastify.t

val eval : ?backend:backend -> t -> Sched.Schedule.t -> Distribution.Dist.t
(** Makespan distribution of a schedule of this engine's case
    (default backend: [Classical]). Raises [Invalid_argument] if the
    schedule's graph has a different task count. *)

type evaluation = {
  makespan : Distribution.Dist.t;
  slack : Sched.Slack.summary;
}

val analyze :
  ?backend:backend ->
  ?slack_mode:Sched.Slack.graph_mode ->
  t ->
  Sched.Schedule.t ->
  evaluation
(** Makespan distribution and slack summary in one pass: the schedule's
    disjunctive graph is built once and shared by the distribution
    propagation and (in the default [`Disjunctive] mode) the mean-weight
    slack levels. [`Precedence] slack falls back to {!Sched.Slack.compute},
    which needs the plain DAG and a simulated reference makespan. *)

(** {1 Incremental re-evaluation}

    A {!session} pins one schedule and keeps its per-node completion
    state (distributions for [Classical], moments for [Spelde]) alive,
    so re-evaluating a one-task move only recomputes the dirty
    downstream cone — the difference between local / adversarial search
    being feasible or not. The cone is the closure, under the patched
    disjunctive graph's successors, of the moved task plus every node
    whose predecessor sequence changed; nodes outside it see
    bitwise-identical inputs and keep their stored values, so
    {!reevaluate} agrees {e bitwise} with a fresh {!analyze} of the
    patched schedule. Cones above [max_cone] (default: half the task
    count), [Dodin] (a global series–parallel reduction) and
    [Montecarlo] fall back to a full evaluation — same bits, no
    speedup — counted under [reeval_full].

    Sessions own their arrays (full {!analyze} calls on the same engine
    are unaffected) but are NOT thread-safe: use one session per
    domain. *)

type session

val start_session :
  ?backend:backend -> ?slack_mode:Sched.Slack.graph_mode -> t -> Sched.Schedule.t -> session
(** Full evaluation of the starting schedule, retaining per-node state.
    Counts as one [analyze] in {!stats}. *)

val session_schedule : session -> Sched.Schedule.t
(** The schedule the session currently pins (updated by committing
    re-evaluations). *)

val session_evaluation : session -> evaluation
(** The last committed evaluation. *)

val session_backend : session -> backend

val reevaluate :
  ?commit:bool ->
  ?max_cone:int ->
  ?at:int ->
  session ->
  moved:int ->
  to_:int ->
  evaluation
(** Evaluation of the one-move neighbor [Schedule.reassign ?at sched
    ~task:moved ~to_], recomputing only the dirty cone when the backend
    allows it. [commit] (default true) advances the session to the
    neighbor; [commit:false] evaluates and restores the previous state,
    so many neighbors can be probed off one base schedule. Raises
    [Invalid_argument] if the move would deadlock the eager execution
    (session state is untouched in that case). *)

val reevaluate_move :
  ?commit:bool -> ?max_cone:int -> session -> Sched.Neighbor.move -> evaluation
(** {!reevaluate} on a packaged {!Sched.Neighbor.move}. *)

val reevaluate_swap :
  ?commit:bool -> ?max_cone:int -> session -> a:int -> b:int -> evaluation
(** Like {!reevaluate} for the two-task exchange [Schedule.swap ~a ~b].
    The dirty cone is seeded from both tasks, so swaps replay exactly
    the nodes either exchange disturbs. Same [commit] contract; raises
    [Invalid_argument] (session state untouched) on deadlocking swaps. *)

val reevaluate_any :
  ?commit:bool -> ?max_cone:int -> session -> Sched.Neighbor.any -> evaluation
(** Dispatch on either move class. *)

(** {1 Cached views}

    Accessors into the engine's caches — used by the evaluation cores
    and available to custom metrics. *)

val task_dist : t -> task:int -> proc:int -> Distribution.Dist.t
val comm_dist : t -> volume:float -> src:int -> dst:int -> Distribution.Dist.t
val task_mean : t -> task:int -> proc:int -> float
val task_std : t -> task:int -> proc:int -> float
val comm_mean : t -> volume:float -> src:int -> dst:int -> float
val comm_std : t -> volume:float -> src:int -> dst:int -> float

val mean_weights : t -> Sched.Schedule.t -> Dag.Levels.weights
(** Mean-duration weights of a schedule, served from the moment tables —
    the engine's counterpart of {!Sched.Disjunctive.weights}. *)

(** {1 Instrumentation} *)

type stats = {
  task_hits : int;
  task_misses : int;  (** filled (task, proc) duration cells *)
  comm_hits : int;
  comm_misses : int;  (** distinct communication weights built *)
  evals : int;  (** total [eval]/[analyze]/[reevaluate] calls *)
  evals_classical : int;
  evals_dodin : int;
  evals_spelde : int;
  evals_montecarlo : int;
  reevals : int;  (** total {!reevaluate} calls *)
  reeval_incremental : int;  (** served by a dirty-cone replay *)
  reeval_full : int;
      (** fell back to a full sweep; always
          [reeval_full_cone + reeval_full_backend] *)
  reeval_full_cone : int;  (** fallbacks whose dirty cone exceeded [max_cone] *)
  reeval_full_backend : int;
      (** fallbacks on non-incremental backends (Dodin, Monte-Carlo) *)
  reeval_cone_nodes : int;  (** total dirty nodes over incremental reevals *)
  reeval_max_cone : int;  (** largest incremental cone seen *)
}

val stats : t -> stats
(** Snapshot of the cache counters (atomic reads; approximate under
    concurrent evaluation). *)

val reset_stats : t -> unit
(** Zero every counter, so benchmarks can measure phases independently.
    Call between phases, not under concurrent evaluation. *)
