(** Unified per-case evaluation engine.

    A case of the paper's experiments is one [(graph, platform,
    uncertainty model)] triple over which thousands of schedules are
    evaluated. An engine is created once per case and owns everything
    that is invariant across those schedules:

    - the (task × proc) duration-distribution table, filled lazily as
      evaluations touch cells;
    - memoized communication distributions. The cache key is the
      deterministic communication weight [latency + volume·τ]: the
      perturbed distribution depends only on that scalar, so this key
      subsumes the (volume, src, dst) triple and additionally collapses
      duplicates on homogeneous networks;
    - exact (mean, std) moment tables, shared by Spelde's method and
      the mean-weight slack levels;
    - per-domain scratch buffers (completion-distribution and moment
      arrays), so repeated evaluations stop allocating.

    All four evaluation methods of the paper are exposed as pluggable
    {!backend}s behind the single {!eval} entry point. Engines are safe
    to share across domains ({!Parallel.Par_array} sweeps): caches are
    mutex-guarded, counters atomic, scratch domain-local. *)

type backend =
  | Classical  (** forward sweep under independence (§III-B) *)
  | Dodin  (** series–parallel reduction with duplication (§III-C) *)
  | Spelde  (** normal moments + Clark maxima (§III-D) *)
  | Montecarlo of { count : int; seed : int64 }
      (** ground truth by simulation; deterministic given [seed] *)

val backend_of_method : Eval.method_ -> backend
(** Embedding of the analytic methods enumerated by {!Eval}. *)

val backend_name : backend -> string

val backend_of_name : ?mc_count:int -> ?mc_seed:int64 -> string -> backend option
(** Inverse of {!backend_name} for wire protocols and CLIs
    (case-insensitive; ["mc"] is accepted for ["montecarlo"], whose
    count/seed come from the optional arguments — defaults 10 000 and
    0). [None] on an unknown name. *)

type t

val create :
  graph:Dag.Graph.t -> platform:Platform.t -> model:Workloads.Stochastify.t -> t
(** One engine per case. Raises [Invalid_argument] when the platform's
    ETC matrix does not match the graph's task count. Creation is cheap
    (moment tables only); distribution cells are built on first use. *)

val graph : t -> Dag.Graph.t
val platform : t -> Platform.t
val model : t -> Workloads.Stochastify.t

val eval : ?backend:backend -> t -> Sched.Schedule.t -> Distribution.Dist.t
(** Makespan distribution of a schedule of this engine's case
    (default backend: [Classical]). Raises [Invalid_argument] if the
    schedule's graph has a different task count. *)

type evaluation = {
  makespan : Distribution.Dist.t;
  slack : Sched.Slack.summary;
}

val analyze :
  ?backend:backend ->
  ?slack_mode:Sched.Slack.graph_mode ->
  t ->
  Sched.Schedule.t ->
  evaluation
(** Makespan distribution and slack summary in one pass: the schedule's
    disjunctive graph is built once and shared by the distribution
    propagation and (in the default [`Disjunctive] mode) the mean-weight
    slack levels. [`Precedence] slack falls back to {!Sched.Slack.compute},
    which needs the plain DAG and a simulated reference makespan. *)

(** {1 Cached views}

    Accessors into the engine's caches — used by the evaluation cores
    and available to custom metrics. *)

val task_dist : t -> task:int -> proc:int -> Distribution.Dist.t
val comm_dist : t -> volume:float -> src:int -> dst:int -> Distribution.Dist.t
val task_mean : t -> task:int -> proc:int -> float
val task_std : t -> task:int -> proc:int -> float
val comm_mean : t -> volume:float -> src:int -> dst:int -> float
val comm_std : t -> volume:float -> src:int -> dst:int -> float

val mean_weights : t -> Sched.Schedule.t -> Dag.Levels.weights
(** Mean-duration weights of a schedule, served from the moment tables —
    the engine's counterpart of {!Sched.Disjunctive.weights}. *)

(** {1 Instrumentation} *)

type stats = {
  task_hits : int;
  task_misses : int;  (** filled (task, proc) duration cells *)
  comm_hits : int;
  comm_misses : int;  (** distinct communication weights built *)
  evals : int;  (** total [eval]/[analyze] calls *)
  evals_classical : int;
  evals_dodin : int;
  evals_spelde : int;
  evals_montecarlo : int;
}

val stats : t -> stats
(** Snapshot of the cache counters (atomic reads; approximate under
    concurrent evaluation). *)

val reset_stats : t -> unit
(** Zero every counter, so benchmarks can measure phases independently.
    Call between phases, not under concurrent evaluation. *)
