type outcome = {
  dist : Distribution.Dist.t;
  duplications : int;
}

let evaluate_with ~points ~dgraph
    ~(task_dist : task:int -> proc:int -> Distribution.Dist.t)
    ~(comm_dist : volume:float -> src:int -> dst:int -> Distribution.Dist.t) sched =
  let open Distribution in
  let graph = sched.Sched.Schedule.graph in
  let proc_of = sched.Sched.Schedule.proc_of in
  let task v = task_dist ~task:v ~proc:proc_of.(v) in
  let edge u v =
    match Dag.Graph.volume graph ~src:u ~dst:v with
    | None -> Dist.const 0.
    | Some volume -> comm_dist ~volume ~src:proc_of.(u) ~dst:proc_of.(v)
  in
  let network = Dag.Series_parallel.of_task_dag dgraph ~task ~edge ~zero:(Dist.const 0.) in
  let algebra =
    {
      Dag.Series_parallel.series = (fun a b -> Dist.add ~points a b);
      parallel = (fun a b -> Dist.max_indep ~points a b);
    }
  in
  let result = Dag.Series_parallel.reduce algebra network in
  { dist = result.Dag.Series_parallel.weight; duplications = result.Dag.Series_parallel.duplications }

let evaluate sched platform model =
  let points = model.Workloads.Stochastify.points in
  let dgraph = Sched.Disjunctive.graph_of sched in
  evaluate_with ~points ~dgraph
    ~task_dist:(fun ~task ~proc -> Workloads.Stochastify.task_dist model platform ~task ~proc)
    ~comm_dist:(fun ~volume ~src ~dst ->
      Workloads.Stochastify.comm_dist model platform ~volume ~src ~dst)
    sched

let run sched platform model = (evaluate sched platform model).dist
