(** Spelde's CLT-based makespan evaluation (per Ludwig, Möhring & Stork
    2001): every duration is reduced to (mean, standard deviation); sums
    add moments, maxima use Clark's formulas — no convolution at all.
    The result is a normal approximation of the makespan distribution. *)

val update_node :
  dgraph:Dag.Graph.t ->
  task_moments:(task:int -> proc:int -> Distribution.Normal_pair.t) ->
  comm_moments:(volume:float -> src:int -> dst:int -> Distribution.Normal_pair.t) ->
  Sched.Schedule.t ->
  Distribution.Normal_pair.t array ->
  int ->
  unit
(** Recompute one node's completion moments in place from its
    predecessors' entries — the single-node body of {!moments_with},
    exposed for {!Engine.reevaluate}'s dirty-cone replay (same
    [List.map]/[max_list] fold order, so results stay bitwise equal). *)

val moments_of_exits :
  dgraph:Dag.Graph.t -> Distribution.Normal_pair.t array -> Distribution.Normal_pair.t
(** Clark-max over the exit tasks' completion moments. *)

val moments_with :
  dgraph:Dag.Graph.t ->
  ?completion:Distribution.Normal_pair.t array ->
  task_moments:(task:int -> proc:int -> Distribution.Normal_pair.t) ->
  comm_moments:(volume:float -> src:int -> dst:int -> Distribution.Normal_pair.t) ->
  Sched.Schedule.t ->
  Distribution.Normal_pair.t
(** The moment propagation with injected duration/communication views —
    the shared core behind {!moments} and the cached {!Engine} path.
    [dgraph] must be the schedule's disjunctive graph; [?completion] is
    optional caller-owned scratch (reused when long enough). *)

val moments : Sched.Schedule.t -> Platform.t -> Workloads.Stochastify.t -> Distribution.Normal_pair.t
(** Mean and standard deviation of the makespan estimate. *)

val run : Sched.Schedule.t -> Platform.t -> Workloads.Stochastify.t -> Distribution.Dist.t
(** The matching normal as a grid distribution (for metric extraction and
    CDF comparisons). *)
