(* The forward sweep is shared between the legacy per-call path and the
   cached {!Engine} path: [completion_dists_with] takes the duration and
   communication distributions as functions (plus an optional
   caller-owned scratch array), so the same propagation serves direct
   Stochastify lookups and an engine's memo tables. *)

let update_node ~points ~dgraph
    ~(task_dist : task:int -> proc:int -> Distribution.Dist.t)
    ~(comm_dist : volume:float -> src:int -> dst:int -> Distribution.Dist.t)
    sched completion v =
  let graph = sched.Sched.Schedule.graph in
  let proc_of = sched.Sched.Schedule.proc_of in
  (* fused arrival/max loop: same left fold as the historical
     [max_list] over a materialized arrival list (bit-identical
     results), without the per-node list and intermediate array *)
  let arrival (p, _) =
    (* disjunctive edges carry no data: volume lookup must use the
       original graph *)
    match Dag.Graph.volume graph ~src:p ~dst:v with
    | None -> completion.(p)
    | Some volume ->
      let comm = comm_dist ~volume ~src:proc_of.(p) ~dst:proc_of.(v) in
      Distribution.Dist.add ~points completion.(p) comm
  in
  let preds = Dag.Graph.preds dgraph v in
  let np = Array.length preds in
  let ready =
    if np = 0 then Distribution.Dist.const 0.
    else begin
      let acc = ref (arrival preds.(0)) in
      for i = 1 to np - 1 do
        acc := Distribution.Dist.max_indep ~points !acc (arrival preds.(i))
      done;
      !acc
    end
  in
  let dur = task_dist ~task:v ~proc:proc_of.(v) in
  completion.(v) <- Distribution.Dist.add ~points ready dur

let completion_dists_with ~points ~dgraph ?completion
    ~(task_dist : task:int -> proc:int -> Distribution.Dist.t)
    ~(comm_dist : volume:float -> src:int -> dst:int -> Distribution.Dist.t) sched =
  let n = Dag.Graph.n_tasks dgraph in
  let completion =
    match completion with
    | Some a when Array.length a >= n -> a
    | Some _ | None -> Array.make n (Distribution.Dist.const 0.)
  in
  Array.iter
    (update_node ~points ~dgraph ~task_dist ~comm_dist sched completion)
    (Dag.Graph.topo_order dgraph);
  completion

let makespan_of_exits ~points dgraph completion =
  let exits = Dag.Graph.exits dgraph in
  if Array.length exits = 0 then invalid_arg "Dist.max_list: empty list";
  let acc = ref completion.(exits.(0)) in
  for i = 1 to Array.length exits - 1 do
    acc := Distribution.Dist.max_indep ~points !acc completion.(exits.(i))
  done;
  !acc

let completion_dists sched platform model =
  let points = model.Workloads.Stochastify.points in
  let dgraph = Sched.Disjunctive.graph_of sched in
  completion_dists_with ~points ~dgraph
    ~task_dist:(fun ~task ~proc -> Workloads.Stochastify.task_dist model platform ~task ~proc)
    ~comm_dist:(fun ~volume ~src ~dst ->
      Workloads.Stochastify.comm_dist model platform ~volume ~src ~dst)
    sched

let run sched platform model =
  let points = model.Workloads.Stochastify.points in
  let dgraph = Sched.Disjunctive.graph_of sched in
  let completion = completion_dists sched platform model in
  makespan_of_exits ~points dgraph completion
