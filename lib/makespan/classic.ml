(* The forward sweep is shared between the legacy per-call path and the
   cached {!Engine} path: [completion_dists_with] takes the duration and
   communication distributions as functions (plus an optional
   caller-owned scratch array), so the same propagation serves direct
   Stochastify lookups and an engine's memo tables. *)

let completion_dists_with ~points ~dgraph ?completion
    ~(task_dist : task:int -> proc:int -> Distribution.Dist.t)
    ~(comm_dist : volume:float -> src:int -> dst:int -> Distribution.Dist.t) sched =
  let graph = sched.Sched.Schedule.graph in
  let proc_of = sched.Sched.Schedule.proc_of in
  let n = Dag.Graph.n_tasks dgraph in
  let completion =
    match completion with
    | Some a when Array.length a >= n -> a
    | Some _ | None -> Array.make n (Distribution.Dist.const 0.)
  in
  Array.iter
    (fun v ->
      let arrivals =
        Array.to_list (Dag.Graph.preds dgraph v)
        |> List.map (fun (p, _) ->
               (* disjunctive edges carry no data: volume lookup must use
                  the original graph *)
               match Dag.Graph.volume graph ~src:p ~dst:v with
               | None -> completion.(p)
               | Some volume ->
                 let comm = comm_dist ~volume ~src:proc_of.(p) ~dst:proc_of.(v) in
                 Distribution.Dist.add ~points completion.(p) comm)
      in
      let ready =
        match arrivals with
        | [] -> Distribution.Dist.const 0.
        | ds -> Distribution.Dist.max_list ~points ds
      in
      let dur = task_dist ~task:v ~proc:proc_of.(v) in
      completion.(v) <- Distribution.Dist.add ~points ready dur)
    (Dag.Graph.topo_order dgraph);
  completion

let makespan_of_exits ~points dgraph completion =
  let exits = Dag.Graph.exits dgraph in
  Distribution.Dist.max_list ~points
    (Array.to_list (Array.map (fun e -> completion.(e)) exits))

let completion_dists sched platform model =
  let points = model.Workloads.Stochastify.points in
  let dgraph = Sched.Disjunctive.graph_of sched in
  completion_dists_with ~points ~dgraph
    ~task_dist:(fun ~task ~proc -> Workloads.Stochastify.task_dist model platform ~task ~proc)
    ~comm_dist:(fun ~volume ~src ~dst ->
      Workloads.Stochastify.comm_dist model platform ~volume ~src ~dst)
    sched

let run sched platform model =
  let points = model.Workloads.Stochastify.points in
  let dgraph = Sched.Disjunctive.graph_of sched in
  let completion = completion_dists sched platform model in
  makespan_of_exits ~points dgraph completion
