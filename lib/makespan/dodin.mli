(** Dodin's series–parallel makespan evaluation (Dodin 1985).

    The schedule's disjunctive graph is converted to an activity-on-arc
    network and reduced with series (convolution) and parallel (CDF
    product) steps; where the network is not series–parallel, nodes are
    duplicated (see {!Dag.Series_parallel}), which is Dodin's
    approximation. On a series–parallel disjunctive graph the result
    equals the classical method's. *)

type outcome = {
  dist : Distribution.Dist.t;
  duplications : int;  (** 0 iff the disjunctive graph was SP *)
}

val evaluate_with :
  points:int ->
  dgraph:Dag.Graph.t ->
  task_dist:(task:int -> proc:int -> Distribution.Dist.t) ->
  comm_dist:(volume:float -> src:int -> dst:int -> Distribution.Dist.t) ->
  Sched.Schedule.t ->
  outcome
(** The reduction with injected duration/communication distributions —
    the shared core behind {!evaluate} and the cached {!Engine} path.
    [dgraph] must be the schedule's disjunctive graph. *)

val evaluate : Sched.Schedule.t -> Platform.t -> Workloads.Stochastify.t -> outcome

val run : Sched.Schedule.t -> Platform.t -> Workloads.Stochastify.t -> Distribution.Dist.t
(** [(evaluate ...).dist]. *)
