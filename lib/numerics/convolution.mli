(** Linear convolution of sampled signals.

    The distribution algebra computes sums of independent random variables
    by convolving their sampled densities, exactly as the paper's C/GSL
    implementation did. Three strategies are provided: a direct O(n·m)
    form (oracle and small-input fast path), an FFT form, and the
    overlap–add block method the paper names for long signals. *)

val direct : float array -> float array -> float array
(** [direct a b] is the full linear convolution, length
    [length a + length b − 1]. O(n·m). *)

val fft : float array -> float array -> float array
(** Same result via zero-padded FFT. O((n+m) log (n+m)). Transform
    buffers come from a per-domain workspace (one quadruple per
    power-of-two size), so repeated calls allocate only the result
    array; safe to call concurrently from distinct domains. *)

val overlap_add : ?block:int -> float array -> float array -> float array
(** [overlap_add ?block a b] convolves [a] (the long signal) with [b] (the
    kernel) by FFT on blocks of [a] of size [block] (default chosen from
    the kernel length). Equal to {!direct} up to rounding. *)

val auto : float array -> float array -> float array
(** Picks a strategy from the input sizes. *)
