(** Linear convolution of sampled signals.

    The distribution algebra computes sums of independent random variables
    by convolving their sampled densities, exactly as the paper's C/GSL
    implementation did. Strategies: a direct O(n·m) form (oracle and
    small-input fast path), a classic two-transform FFT form, a
    packed-real single-transform FFT form, and the overlap–add block
    method the paper names for long signals.

    The [_into] variants are the zero-allocation hot path: operands are
    read as prefixes ([a] up to [n], [b] up to [m]) of possibly oversized
    pooled arenas and the result is written to [out.(0 .. n+m-2)]. [out]
    must not alias either input. Transform scratch comes from per-domain
    workspaces, so repeated calls allocate nothing; safe to call
    concurrently from distinct domains. *)

val direct : float array -> float array -> float array
(** [direct a b] is the full linear convolution, length
    [length a + length b − 1]. O(n·m). *)

val direct_into : out:float array -> float array -> int -> float array -> int -> unit
(** [direct_into ~out a n b m] is {!direct} on prefixes, into [out]. *)

val fft : float array -> float array -> float array
(** Same result via zero-padded FFT, one forward transform per operand.
    O((n+m) log (n+m)). *)

val fft_into : out:float array -> float array -> int -> float array -> int -> unit
(** [fft_into ~out a n b m] is {!fft} on prefixes, into [out]. *)

val fft_packed : float array -> float array -> float array
(** Packed-real FFT convolution: both real operands travel in a single
    complex forward transform ([z = a + i·b]), the operand spectra are
    separated by conjugate symmetry, and one inverse transform recovers
    the product. Half the forward-transform cost of {!fft}; agrees with
    {!direct} and {!fft} to rounding (≪ 1e-9 on unit-mass densities). *)

val fft_packed_into : out:float array -> float array -> int -> float array -> int -> unit
(** [fft_packed_into ~out a n b m] is {!fft_packed} on prefixes, into [out]. *)

val overlap_add : ?block:int -> float array -> float array -> float array
(** [overlap_add ?block a b] convolves [a] (the long signal) with [b] (the
    kernel) by packed FFT on blocks of [a] of size [block] (default chosen
    from the kernel length). Equal to {!direct} up to rounding. Block
    copies and partial results live in per-domain scratch. *)

val overlap_add_into :
  out:float array -> ?block:int -> float array -> int -> float array -> int -> unit
(** [overlap_add_into ~out ?block a n b m] is {!overlap_add} on prefixes,
    into [out]. *)

val auto : float array -> float array -> float array
(** Picks a strategy from the input sizes. *)

val auto_into : out:float array -> float array -> int -> float array -> int -> unit
(** [auto_into ~out a n b m]: same dispatch as {!auto}, into [out]. *)

