(** Linear convolution of sampled signals.

    The distribution algebra computes sums of independent random variables
    by convolving their sampled densities, exactly as the paper's C/GSL
    implementation did. Strategies: a direct O(n·m) form (oracle and
    small-input fast path), a classic two-transform FFT form, a
    packed-real single-transform FFT form, and the overlap–add block
    method the paper names for long signals.

    The [_into] variants are the zero-allocation hot path: operands are
    read as prefixes ([a] up to [n], [b] up to [m]) of possibly oversized
    pooled arenas and the result is written to [out.(0 .. n+m-2)]. [out]
    must not alias either input. Transform scratch comes from per-domain
    workspaces, so repeated calls allocate nothing; safe to call
    concurrently from distinct domains. *)

val direct : float array -> float array -> float array
(** [direct a b] is the full linear convolution, length
    [length a + length b − 1]. O(n·m). *)

val direct_into : out:float array -> float array -> int -> float array -> int -> unit
(** [direct_into ~out a n b m] is {!direct} on prefixes, into [out]. *)

val direct_into_fa :
  out:floatarray -> floatarray -> int -> floatarray -> int -> unit
(** {!direct_into} over unboxed [floatarray] prefixes — guaranteed flat
    storage the optimizer can vectorize. Same accumulation order as the
    boxed kernel, so results are bit-for-bit identical. *)

(** Moment-space fast path for deep convolution chains: past a depth
    threshold the partial sum is replaced by its CLT normal (μ and σ²
    add), certified by the Berry–Esseen inequality
    [sup|F−Φ| ≤ c0·Σρᵢ/(Σσᵢ²)^(3/2)] with [ρᵢ = E|Xᵢ−μᵢ|³]. Kolmogorov
    distance is non-expansive under convolution and independent maxima,
    so per-step bounds accumulate additively. *)
module Moment_chain : sig
  val c0 : float
  (** Shevtsova's 2010 constant, 0.56. *)

  val bound : rho3:float -> var:float -> float
  (** One-step Berry–Esseen bound for summed third absolute central
      moments [rho3] and summed variance [var], clamped to [0, 1]
      (Kolmogorov distance cannot exceed 1; degenerate [var ≤ 0] reports
      the vacuous 1). *)

  val normal_pdf_into :
    out:float array -> n:int -> lo:float -> dx:float -> mean:float -> std:float -> unit
  (** Sample the normal density on [lo + k·dx], [k < n], into [out]. *)
end

val fft : float array -> float array -> float array
(** Same result via zero-padded FFT, one forward transform per operand.
    O((n+m) log (n+m)). *)

val fft_into : out:float array -> float array -> int -> float array -> int -> unit
(** [fft_into ~out a n b m] is {!fft} on prefixes, into [out]. *)

val fft_packed : float array -> float array -> float array
(** Packed-real FFT convolution: both real operands travel in a single
    complex forward transform ([z = a + i·b]), the operand spectra are
    separated by conjugate symmetry, and one inverse transform recovers
    the product. Half the forward-transform cost of {!fft}; agrees with
    {!direct} and {!fft} to rounding (≪ 1e-9 on unit-mass densities). *)

val fft_packed_into : out:float array -> float array -> int -> float array -> int -> unit
(** [fft_packed_into ~out a n b m] is {!fft_packed} on prefixes, into [out]. *)

val overlap_add : ?block:int -> float array -> float array -> float array
(** [overlap_add ?block a b] convolves [a] (the long signal) with [b] (the
    kernel) by packed FFT on blocks of [a] of size [block] (default chosen
    from the kernel length). Equal to {!direct} up to rounding. Block
    copies and partial results live in per-domain scratch. *)

val overlap_add_into :
  out:float array -> ?block:int -> float array -> int -> float array -> int -> unit
(** [overlap_add_into ~out ?block a n b m] is {!overlap_add} on prefixes,
    into [out]. *)

val auto : float array -> float array -> float array
(** Picks a strategy from the input sizes. *)

val auto_into : out:float array -> float array -> int -> float array -> int -> unit
(** [auto_into ~out a n b m]: same dispatch as {!auto}, into [out]. *)

