(* Quadrature over pre-sampled uniform grids. These run inside every
   distribution construction, so the loops use unsafe accesses — indices
   are bounded by the length checks on entry. *)

let trapezoid_sampled ~dx ys =
  let n = Array.length ys in
  if n < 2 then invalid_arg "Integrate.trapezoid_sampled: need >= 2 samples";
  let s = ref ((ys.(0) +. ys.(n - 1)) /. 2.) in
  for i = 1 to n - 2 do
    s := !s +. Array.unsafe_get ys i
  done;
  !s *. dx

let simpson_sampled ~dx ys =
  let n = Array.length ys in
  if n < 2 then invalid_arg "Integrate.simpson_sampled: need >= 2 samples";
  if n = 2 then (ys.(0) +. ys.(1)) /. 2. *. dx
  else begin
    (* Simpson needs an even number of intervals; with an odd interval
       count, integrate the last interval by trapezoid. *)
    let intervals = n - 1 in
    let simpson_intervals = if intervals mod 2 = 0 then intervals else intervals - 1 in
    let s = ref (ys.(0) +. ys.(simpson_intervals)) in
    for i = 1 to simpson_intervals - 1 do
      let w = if i mod 2 = 1 then 4. else 2. in
      s := !s +. (w *. Array.unsafe_get ys i)
    done;
    let main = !s *. dx /. 3. in
    let tail =
      if simpson_intervals = intervals then 0.
      else (ys.(n - 2) +. ys.(n - 1)) /. 2. *. dx
    in
    main +. tail
  end

let simpson ~f ~a ~b ~n =
  if n <= 0 then invalid_arg "Integrate.simpson: n must be positive";
  let n = if n mod 2 = 0 then n else n + 1 in
  let dx = (b -. a) /. float_of_int n in
  let ys = Array.init (n + 1) (fun i -> f (a +. (float_of_int i *. dx))) in
  simpson_sampled ~dx ys

let cumulative ~dx ys =
  let n = Array.length ys in
  if n < 1 then invalid_arg "Integrate.cumulative: empty input";
  let out = Array.make n 0. in
  for i = 1 to n - 1 do
    Array.unsafe_set out i
      (Array.unsafe_get out (i - 1)
      +. ((Array.unsafe_get ys (i - 1) +. Array.unsafe_get ys i) /. 2. *. dx))
  done;
  out
