(** Natural cubic spline interpolation.

    The paper samples every probability density with 64 points and
    reconstructs intermediate values by cubic splines; this module provides
    that reconstruction, plus a resampling helper used whenever a
    distribution changes support after a sum or maximum. *)

type t
(** A fitted spline over strictly increasing knots. *)

val fit : xs:float array -> ys:float array -> t
(** [fit ~xs ~ys] builds a natural cubic spline ([y'' = 0] at both ends)
    through the points [(xs.(i), ys.(i))]. [xs] must be strictly
    increasing and contain at least two points. *)

val eval : t -> float -> float
(** [eval s x] evaluates the spline. Outside the knot range the boundary
    cubic is extrapolated. *)

type cursor
(** Mutable knot-segment position for mostly-increasing query sequences.
    One cursor per scan; never share one across domains. *)

val cursor : unit -> cursor
(** A fresh cursor at the first segment. *)

val eval_walk : t -> cursor -> float -> float
(** [eval_walk s c x] evaluates the spline at [x], advancing [c]
    linearly from its last segment instead of binary-searching per
    point, and falling back to the search on a regressing query. Returns
    values bit-identical to {!eval}. This is the allocation-free direct
    form of {!walker} — hot scans prefer it because each call is a plain
    function call, not a closure invocation. *)

val walker : t -> float -> float
(** [walker s] is {!eval_walk} packaged as a closure over a fresh
    {!cursor}: a stateful evaluator for mostly-increasing query
    sequences. Returns values bit-identical to {!eval}. *)

val eval_clamped : t -> float -> float
(** Like {!eval} but returns the boundary ordinate outside the knot range —
    the right choice for densities, which must not oscillate when
    extrapolated. *)

val resample : xs:float array -> ys:float array -> onto:float array -> float array
(** [resample ~xs ~ys ~onto] fits a spline to [(xs, ys)] and evaluates it
    (clamped) at every point of [onto]. *)
