type t = {
  xs : float array;
  ys : float array;
  y2 : float array; (* second derivatives at the knots *)
}

(* Hot path: spline fit/eval dominates distribution resampling, so the
   loops below use unsafe accesses — every index is bounded by [n],
   validated on entry. *)

let fit ~xs ~ys =
  let n = Array.length xs in
  if Array.length ys <> n then invalid_arg "Spline.fit: xs/ys length mismatch";
  if n < 2 then invalid_arg "Spline.fit: need at least 2 knots";
  for i = 1 to n - 1 do
    if xs.(i) <= xs.(i - 1) then
      invalid_arg "Spline.fit: knots must be strictly increasing"
  done;
  (* Tridiagonal solve for the natural spline second derivatives
     (Numerical Recipes §3.3). *)
  let y2 = Array.make n 0. in
  let u = Array.make n 0. in
  for i = 1 to n - 2 do
    let x_lo = Array.unsafe_get xs (i - 1)
    and x_mid = Array.unsafe_get xs i
    and x_hi = Array.unsafe_get xs (i + 1) in
    let sig_ = (x_mid -. x_lo) /. (x_hi -. x_lo) in
    let p = (sig_ *. Array.unsafe_get y2 (i - 1)) +. 2. in
    Array.unsafe_set y2 i ((sig_ -. 1.) /. p);
    let slope_hi = (Array.unsafe_get ys (i + 1) -. Array.unsafe_get ys i) /. (x_hi -. x_mid) in
    let slope_lo = (Array.unsafe_get ys i -. Array.unsafe_get ys (i - 1)) /. (x_mid -. x_lo) in
    Array.unsafe_set u i
      ((((6. *. (slope_hi -. slope_lo)) /. (x_hi -. x_lo)) -. (sig_ *. Array.unsafe_get u (i - 1)))
      /. p)
  done;
  for i = n - 2 downto 1 do
    Array.unsafe_set y2 i
      ((Array.unsafe_get y2 i *. Array.unsafe_get y2 (i + 1)) +. Array.unsafe_get u i)
  done;
  { xs; ys; y2 }

let segment t x =
  (* binary search for the knot interval containing x *)
  let n = Array.length t.xs in
  let lo = ref 0 and hi = ref (n - 1) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if Array.unsafe_get t.xs mid > x then hi := mid else lo := mid
  done;
  !lo

let eval_at t i x =
  let xs = t.xs and ys = t.ys and y2 = t.y2 in
  let x_i = Array.unsafe_get xs i and x_i1 = Array.unsafe_get xs (i + 1) in
  let h = x_i1 -. x_i in
  let a = (x_i1 -. x) /. h in
  let b = (x -. x_i) /. h in
  (a *. Array.unsafe_get ys i)
  +. (b *. Array.unsafe_get ys (i + 1))
  +. ((((a *. a *. a) -. a) *. Array.unsafe_get y2 i)
     +. (((b *. b *. b) -. b) *. Array.unsafe_get y2 (i + 1)))
     *. h *. h /. 6.

let eval t x = eval_at t (segment t x) x

(* A walker is a stateful evaluator for query sequences that are mostly
   increasing (grid resampling scans): it keeps the last segment index
   and advances linearly, falling back to the binary search only when a
   query regresses. The segment chosen is identical to [segment]'s — the
   largest [i] with [xs.(i) <= x], clamped to [n − 2] — so a walker
   returns bit-identical values to [eval], just without the O(log n)
   search per point. *)
type cursor = { mutable seg : int }

let cursor () = { seg = 0 }

let eval_walk t cur x =
  let xs = t.xs in
  let s = cur.seg in
  let s =
    if x < Array.unsafe_get xs s then segment t x
    else begin
      let n = Array.length xs in
      let c = ref s in
      while !c < n - 2 && Array.unsafe_get xs (!c + 1) <= x do incr c done;
      !c
    end
  in
  cur.seg <- s;
  eval_at t s x

let walker t =
  let cur = cursor () in
  fun x -> eval_walk t cur x

let eval_clamped t x =
  let n = Array.length t.xs in
  if x <= t.xs.(0) then t.ys.(0)
  else if x >= t.xs.(n - 1) then t.ys.(n - 1)
  else eval t x

let resample ~xs ~ys ~onto =
  let s = fit ~xs ~ys in
  Array.map (eval_clamped s) onto
