let direct a b =
  let n = Array.length a and m = Array.length b in
  if n = 0 || m = 0 then invalid_arg "Convolution.direct: empty input";
  let out = Array.make (n + m - 1) 0. in
  for i = 0 to n - 1 do
    let ai = a.(i) in
    if ai <> 0. then
      for j = 0 to m - 1 do
        out.(i + j) <- out.(i + j) +. (ai *. b.(j))
      done
  done;
  out

(* Length-explicit kernel writing into a caller buffer: [a] and [b] are
   read as prefixes of length [n] and [m] (they may be oversized pooled
   arenas), and [out.(0 .. n+m-2)] receives the full linear convolution. *)
let direct_into ~out a n b m =
  if n = 0 || m = 0 then invalid_arg "Convolution.direct: empty input";
  if Array.length a < n || Array.length b < m then
    invalid_arg "Convolution.direct_into: prefix longer than operand";
  Array.fill out 0 (n + m - 1) 0.;
  (* unsafe: i + j ≤ n + m − 2 < length out, i < n ≤ length a,
     j < m ≤ length b *)
  for i = 0 to n - 1 do
    let ai = Array.unsafe_get a i in
    if ai <> 0. then
      for j = 0 to m - 1 do
        Array.unsafe_set out (i + j)
          (Array.unsafe_get out (i + j) +. (ai *. Array.unsafe_get b j))
      done
  done

(* Unboxed tier: the same direct kernel over [floatarray] prefixes.
   [floatarray] is guaranteed flat unboxed storage with no per-element
   tag dispatch, so flambda can keep the inner multiply–add loop in
   registers and vectorize it. The accumulation order is IDENTICAL to
   [direct_into] (i-outer, j-inner, zero-skip on [ai]), so results are
   bit-for-bit equal to the boxed kernel — callers may switch tiers
   freely without perturbing reproducible outputs. *)
let direct_into_fa ~out a n b m =
  if n = 0 || m = 0 then invalid_arg "Convolution.direct: empty input";
  if Float.Array.length a < n || Float.Array.length b < m then
    invalid_arg "Convolution.direct_into_fa: prefix longer than operand";
  Float.Array.fill out 0 (n + m - 1) 0.;
  for i = 0 to n - 1 do
    let ai = Float.Array.unsafe_get a i in
    if ai <> 0. then
      for j = 0 to m - 1 do
        Float.Array.unsafe_set out (i + j)
          (Float.Array.unsafe_get out (i + j) +. (ai *. Float.Array.unsafe_get b j))
      done
  done

(* Moment-space fast path for long convolution chains. After enough
   convolutions the partial sum is CLT-normal (the paper's Figs. 7–8:
   ≈5–10 convolutions already look normal), so past a depth threshold
   the chain can switch from sampled convolution to moment arithmetic —
   μ and σ² add, and the result is materialized as a sampled normal.
   The explicit accuracy certificate is the Berry–Esseen inequality for
   independent, non-identically distributed summands:

     sup_x |F_S(x) − Φ((x−μ)/σ)| ≤ C₀ · (Σᵢ ρᵢ) / (Σᵢ σᵢ²)^{3/2}

   with ρᵢ = E|Xᵢ−μᵢ|³ and C₀ = 0.56 (Shevtsova 2010). Treating an
   already-accumulated partial sum as a single summand keeps the bound
   valid — the inequality holds for any decomposition into independent
   parts — so a two-operand step bound composes by the triangle
   inequality with whatever error the operands already carry
   (Kolmogorov distance is non-expansive under both convolution and
   independent maxima). *)
module Moment_chain = struct
  let c0 = 0.56

  let bound ~rho3 ~var =
    if var <= 0. || not (Float.is_finite var) then 1.
    else Float.min 1. (c0 *. rho3 /. (var *. sqrt var))

  let normal_pdf_into ~out ~n ~lo ~dx ~mean ~std =
    if std <= 0. then invalid_arg "Moment_chain.normal_pdf_into: std must be positive";
    if Array.length out < n then invalid_arg "Moment_chain.normal_pdf_into: buffer too short";
    let inv = 1. /. (std *. sqrt (2. *. Float.pi)) in
    for k = 0 to n - 1 do
      let d = (lo +. (float_of_int k *. dx) -. mean) /. std in
      Array.unsafe_set out k (inv *. exp (-0.5 *. d *. d))
    done
end

(* Per-domain workspace: transform buffers are reused across calls (one
   set per power-of-two size, zeroed before use), so the distribution
   algebra's hot path — thousands of small convolutions per schedule
   sweep — stops allocating. Domain-local storage keeps parallel
   evaluation race-free without locks. The FFT operates on whole arrays,
   so buffers are keyed by their exact (power-of-two) length. *)
type buffers = {
  are : float array;
  aim : float array;
  bre : float array;
  bim : float array;
}

let workspace_key : (int, buffers) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

(* Workspace growth telemetry: each first-touch of a (domain, size) pair
   allocates transform buffers; the counters record how often and how
   many words, so sweeps can attribute allocation to FFT scratch. *)
let m_ws_allocs = Obs.Metrics.counter "fft.workspace_allocs"
let m_ws_words = Obs.Metrics.counter "fft.workspace_words"

let workspace_buffers size =
  let tbl = Domain.DLS.get workspace_key in
  match Hashtbl.find_opt tbl size with
  | Some w ->
    Array.fill w.are 0 size 0.;
    Array.fill w.aim 0 size 0.;
    Array.fill w.bre 0 size 0.;
    Array.fill w.bim 0 size 0.;
    w
  | None ->
    Obs.Metrics.incr m_ws_allocs;
    Obs.Metrics.add m_ws_words (4 * size);
    let w =
      { are = Array.make size 0.; aim = Array.make size 0.;
        bre = Array.make size 0.; bim = Array.make size 0. }
    in
    Hashtbl.add tbl size w;
    w

(* Packed-real transforms need only one complex buffer pair per size. *)
type pair = { zre : float array; zim : float array }

let pair_key : (int, pair) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let pair_buffers size =
  let tbl = Domain.DLS.get pair_key in
  match Hashtbl.find_opt tbl size with
  | Some w ->
    Array.fill w.zre 0 size 0.;
    Array.fill w.zim 0 size 0.;
    w
  | None ->
    Obs.Metrics.incr m_ws_allocs;
    Obs.Metrics.add m_ws_words (2 * size);
    let w = { zre = Array.make size 0.; zim = Array.make size 0. } in
    Hashtbl.add tbl size w;
    w

let fft_into ~out a n b m =
  if n = 0 || m = 0 then invalid_arg "Convolution.fft: empty input";
  let size = Array_ops.next_pow2 (n + m - 1) in
  let w = workspace_buffers size in
  let are = w.are and aim = w.aim and bre = w.bre and bim = w.bim in
  Array.blit a 0 are 0 n;
  Array.blit b 0 bre 0 m;
  Fft.forward are aim;
  Fft.forward bre bim;
  for i = 0 to size - 1 do
    let ar = Array.unsafe_get are i and ai = Array.unsafe_get aim i in
    let br = Array.unsafe_get bre i and bi = Array.unsafe_get bim i in
    Array.unsafe_set are i ((ar *. br) -. (ai *. bi));
    Array.unsafe_set aim i ((ar *. bi) +. (ai *. br))
  done;
  Fft.inverse are aim;
  Array.blit are 0 out 0 (n + m - 1)

let fft a b =
  let n = Array.length a and m = Array.length b in
  if n = 0 || m = 0 then invalid_arg "Convolution.fft: empty input";
  let out = Array.make (n + m - 1) 0. in
  fft_into ~out a n b m;
  out

(* Packed real convolution: both operands are real, so they travel in one
   complex transform z = a + i·b. By conjugate symmetry of real signals,
   the individual spectra are recovered as
     A_k = (Z_k + conj Z_{n-k}) / 2,   B_k = (Z_k − conj Z_{n-k}) / 2i,
   the product spectrum C = A·B is Hermitian (C_{n-k} = conj C_k), and a
   single inverse transform yields the real convolution. One forward
   transform instead of two; bins 0 and n/2 are self-conjugate and purely
   real. Results differ from {!fft} only in rounding (≪ 1e-9 at the
   grid sizes the distribution algebra uses). *)
let fft_packed_into ~out a n b m =
  if n = 0 || m = 0 then invalid_arg "Convolution.fft_packed: empty input";
  let size = Array_ops.next_pow2 (n + m - 1) in
  let w = pair_buffers size in
  let zre = w.zre and zim = w.zim in
  Array.blit a 0 zre 0 n;
  Array.blit b 0 zim 0 m;
  Fft.forward zre zim;
  (* bin 0: A_0 = re Z_0, B_0 = im Z_0 *)
  zre.(0) <- zre.(0) *. zim.(0);
  zim.(0) <- 0.;
  if size > 1 then begin
    let h = size / 2 in
    (* bin n/2 is likewise self-conjugate: A, B real *)
    zre.(h) <- zre.(h) *. zim.(h);
    zim.(h) <- 0.;
    for k = 1 to h - 1 do
      let nk = size - k in
      let zr = Array.unsafe_get zre k and zi = Array.unsafe_get zim k in
      let yr = Array.unsafe_get zre nk and yi = Array.unsafe_get zim nk in
      let ar = 0.5 *. (zr +. yr) and ai = 0.5 *. (zi -. yi) in
      let br = 0.5 *. (zi +. yi) and bi = 0.5 *. (yr -. zr) in
      let cr = (ar *. br) -. (ai *. bi) in
      let ci = (ar *. bi) +. (ai *. br) in
      Array.unsafe_set zre k cr;
      Array.unsafe_set zim k ci;
      Array.unsafe_set zre nk cr;
      Array.unsafe_set zim nk (-.ci)
    done
  end;
  Fft.inverse zre zim;
  Array.blit zre 0 out 0 (n + m - 1)

let fft_packed a b =
  let n = Array.length a and m = Array.length b in
  if n = 0 || m = 0 then invalid_arg "Convolution.fft_packed: empty input";
  let out = Array.make (n + m - 1) 0. in
  fft_packed_into ~out a n b m;
  out

(* Overlap–add scratch: one growable chunk copy and one partial-result
   buffer per domain, instead of an [Array.sub] + fresh piece per block. *)
type oa_scratch = { mutable chunk : float array; mutable piece : float array }

let oa_key : oa_scratch Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { chunk = [||]; piece = [||] })

let oa_grow buf len =
  if Array.length buf >= len then buf else Array.make (Array_ops.next_pow2 len) 0.

let overlap_add_into ~out ?block a n b m =
  if n = 0 || m = 0 then invalid_arg "Convolution.overlap_add: empty input";
  (* Convolve kernel [b] with consecutive blocks of [a]; partial results
     overlap by m-1 samples and add. *)
  let block =
    match block with
    | Some s ->
      if s <= 0 then invalid_arg "Convolution.overlap_add: block must be positive";
      s
    | None -> Int.max m 64
  in
  Array.fill out 0 (n + m - 1) 0.;
  let s = Domain.DLS.get oa_key in
  s.chunk <- oa_grow s.chunk (Int.min block n);
  s.piece <- oa_grow s.piece (Int.min block n + m - 1);
  let chunk = s.chunk and piece = s.piece in
  let pos = ref 0 in
  while !pos < n do
    let len = Int.min block (n - !pos) in
    Array.blit a !pos chunk 0 len;
    fft_packed_into ~out:piece chunk len b m;
    let base = !pos in
    for i = 0 to len + m - 2 do
      Array.unsafe_set out (base + i)
        (Array.unsafe_get out (base + i) +. Array.unsafe_get piece i)
    done;
    pos := !pos + len
  done

let overlap_add ?block a b =
  let n = Array.length a and m = Array.length b in
  if n = 0 || m = 0 then invalid_arg "Convolution.overlap_add: empty input";
  let out = Array.make (n + m - 1) 0. in
  overlap_add_into ~out ?block a n b m;
  out

(* Heuristic dispatch, unchanged thresholds: tiny products go direct,
   strongly mismatched lengths go overlap–add (with the longer operand
   as the signal), the rest one packed-real FFT. *)
let auto_into ~out a n b m =
  let small = Int.min n m and large = Int.max n m in
  if small * large <= 4096 then direct_into ~out a n b m
  else if large > 8 * small then
    if n >= m then overlap_add_into ~out a n b m
    else overlap_add_into ~out b m a n
  else fft_packed_into ~out a n b m

let auto a b =
  let n = Array.length a and m = Array.length b in
  if n = 0 || m = 0 then invalid_arg "Convolution: empty input";
  let out = Array.make (n + m - 1) 0. in
  auto_into ~out a n b m;
  out
