let direct a b =
  let n = Array.length a and m = Array.length b in
  if n = 0 || m = 0 then invalid_arg "Convolution.direct: empty input";
  let out = Array.make (n + m - 1) 0. in
  for i = 0 to n - 1 do
    let ai = a.(i) in
    if ai <> 0. then
      for j = 0 to m - 1 do
        out.(i + j) <- out.(i + j) +. (ai *. b.(j))
      done
  done;
  out

(* Per-domain workspace: the four transform buffers are reused across
   calls (one quadruple per power-of-two size, zeroed before use), so the
   distribution algebra's hot path — thousands of small convolutions per
   schedule sweep — stops allocating. Domain-local storage keeps parallel
   evaluation race-free without locks. The FFT operates on whole arrays,
   so buffers are keyed by their exact (power-of-two) length. *)
type buffers = {
  are : float array;
  aim : float array;
  bre : float array;
  bim : float array;
}

let workspace_key : (int, buffers) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

(* Workspace growth telemetry: each first-touch of a (domain, size) pair
   allocates four [size]-float buffers; the counters record how often and
   how many words, so sweeps can attribute allocation to FFT scratch. *)
let m_ws_allocs = Obs.Metrics.counter "fft.workspace_allocs"
let m_ws_words = Obs.Metrics.counter "fft.workspace_words"

let workspace_buffers size =
  let tbl = Domain.DLS.get workspace_key in
  match Hashtbl.find_opt tbl size with
  | Some w ->
    Array.fill w.are 0 size 0.;
    Array.fill w.aim 0 size 0.;
    Array.fill w.bre 0 size 0.;
    Array.fill w.bim 0 size 0.;
    w
  | None ->
    Obs.Metrics.incr m_ws_allocs;
    Obs.Metrics.add m_ws_words (4 * size);
    let w =
      { are = Array.make size 0.; aim = Array.make size 0.;
        bre = Array.make size 0.; bim = Array.make size 0. }
    in
    Hashtbl.add tbl size w;
    w

let fft a b =
  let n = Array.length a and m = Array.length b in
  if n = 0 || m = 0 then invalid_arg "Convolution.fft: empty input";
  let size = Array_ops.next_pow2 (n + m - 1) in
  let w = workspace_buffers size in
  let are = w.are and aim = w.aim and bre = w.bre and bim = w.bim in
  Array.blit a 0 are 0 n;
  Array.blit b 0 bre 0 m;
  Fft.forward are aim;
  Fft.forward bre bim;
  for i = 0 to size - 1 do
    let r = (are.(i) *. bre.(i)) -. (aim.(i) *. bim.(i)) in
    let j = (are.(i) *. bim.(i)) +. (aim.(i) *. bre.(i)) in
    are.(i) <- r;
    aim.(i) <- j
  done;
  Fft.inverse are aim;
  Array.sub are 0 (n + m - 1)

let overlap_add ?block a b =
  let n = Array.length a and m = Array.length b in
  if n = 0 || m = 0 then invalid_arg "Convolution.overlap_add: empty input";
  (* Convolve kernel [b] with consecutive blocks of [a]; partial results
     overlap by m-1 samples and add. *)
  let block =
    match block with
    | Some s ->
      if s <= 0 then invalid_arg "Convolution.overlap_add: block must be positive";
      s
    | None -> Int.max m 64
  in
  let out = Array.make (n + m - 1) 0. in
  let pos = ref 0 in
  while !pos < n do
    let len = Int.min block (n - !pos) in
    let chunk = Array.sub a !pos len in
    let piece = fft chunk b in
    for i = 0 to Array.length piece - 1 do
      out.(!pos + i) <- out.(!pos + i) +. piece.(i)
    done;
    pos := !pos + len
  done;
  out

let auto a b =
  let n = Array.length a and m = Array.length b in
  let small = Int.min n m and large = Int.max n m in
  if small * large <= 4096 then direct a b
  else if large > 8 * small then
    if n >= m then overlap_add a b else overlap_add b a
  else fft a b
