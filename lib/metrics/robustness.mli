(** The eight metrics of §IV, extracted from a schedule's makespan
    distribution and slack structure.

    All are oriented as measured (not yet inverted for plotting — see
    {!Inversion}): larger slack means more spare time, larger
    probabilistic metrics mean more mass near the expected makespan. *)

type t = {
  expected_makespan : float;  (** E(M) — the performance metric itself *)
  makespan_std : float;  (** σ_M *)
  makespan_entropy : float;  (** differential entropy h(M) = −∫ f ln f *)
  avg_slack : float;  (** S = Σᵢ (M − Bl(i) − Tl(i)), the paper's “average slack” *)
  slack_std : float;  (** dispersion of the per-task slacks *)
  avg_lateness : float;  (** L = E(M′) − E(M), M′ = M conditioned on M > E(M) *)
  prob_absolute : float;  (** A(δ) = P(E(M)−δ ≤ M ≤ E(M)+δ) *)
  prob_relative : float;  (** R(γ) = P(E(M)/γ ≤ M ≤ γ·E(M)) *)
}

val labels : string array
(** Display names in the paper's Fig. 3–6 order. *)

val n_metrics : int

val compute :
  ?delta:float ->
  ?gamma:float ->
  makespan_dist:Distribution.Dist.t ->
  slack:Sched.Slack.summary ->
  unit ->
  t
(** [compute ~makespan_dist ~slack ()] with the paper's default bounds
    δ = 0.1 and γ = 1.0003 (override per case — §V notes they must be
    adapted to the weight scale). Requires [delta >= 0] and [gamma >= 1]. *)

val of_engine :
  ?delta:float ->
  ?gamma:float ->
  ?method_:[ `Classical | `Dodin | `Spelde ] ->
  ?slack_mode:Sched.Slack.graph_mode ->
  Makespan.Engine.t ->
  Sched.Schedule.t ->
  t
(** All eight metrics from one {!Makespan.Engine.analyze} pass: the
    makespan distribution and the slack levels share the engine's cached
    durations and a single disjunctive graph. This is the path the
    experiment sweeps take — create the engine once per case, then call
    [of_engine] per schedule. *)

val of_schedule :
  ?delta:float ->
  ?gamma:float ->
  ?method_:[ `Classical | `Dodin | `Spelde ] ->
  ?slack_mode:Sched.Slack.graph_mode ->
  Sched.Schedule.t ->
  Platform.t ->
  Workloads.Stochastify.t ->
  t
(** End-to-end convenience: a one-shot engine around {!of_engine}
    (default method [`Classical], the paper's choice; default slack
    [`Disjunctive]). *)

val to_array : t -> float array
(** Values in {!labels} order. *)

val calibrate_bounds : (float * float) list -> float * float
(** [calibrate_bounds pilot] takes pilot [(E(M), σ_M)] pairs from a few
    schedules of a case and returns [(δ, γ)] placing the median schedule's
    A and R near 0.5, so both metrics spread over (0, 1) as §V requires:
    [δ = 0.6745·median σ], [γ = 1 + 0.6745·median (σ/E(M))]. *)
