type t = {
  expected_makespan : float;
  makespan_std : float;
  makespan_entropy : float;
  avg_slack : float;
  slack_std : float;
  avg_lateness : float;
  prob_absolute : float;
  prob_relative : float;
}

let labels =
  [| "makespan"; "mk-std"; "mk-entropy"; "avg-slack"; "slack-std"; "lateness";
     "abs-prob"; "rel-prob" |]

let n_metrics = Array.length labels

let compute ?(delta = 0.1) ?(gamma = 1.0003) ~makespan_dist ~slack () =
  if delta < 0. then invalid_arg "Robustness.compute: delta must be >= 0";
  if gamma < 1. then invalid_arg "Robustness.compute: gamma must be >= 1";
  let open Distribution in
  let mu = Dist.mean makespan_dist in
  let late_mean = Dist.mean_above makespan_dist mu in
  {
    expected_makespan = mu;
    makespan_std = Dist.std makespan_dist;
    makespan_entropy = Dist.entropy makespan_dist;
    avg_slack = slack.Sched.Slack.total;
    slack_std = slack.Sched.Slack.std;
    avg_lateness = late_mean -. mu;
    prob_absolute = Dist.prob_between makespan_dist (mu -. delta) (mu +. delta);
    prob_relative = Dist.prob_between makespan_dist (mu /. gamma) (gamma *. mu);
  }

let backend_of_variant = function
  | `Classical -> Makespan.Engine.Classical
  | `Dodin -> Makespan.Engine.Dodin
  | `Spelde -> Makespan.Engine.Spelde

let of_engine ?delta ?gamma ?(method_ = `Classical) ?slack_mode engine sched =
  let { Makespan.Engine.makespan; slack } =
    Makespan.Engine.analyze ~backend:(backend_of_variant method_) ?slack_mode engine
      sched
  in
  compute ?delta ?gamma ~makespan_dist:makespan ~slack ()

let of_schedule ?delta ?gamma ?method_ ?slack_mode sched platform model =
  let engine =
    Makespan.Engine.create ~graph:sched.Sched.Schedule.graph ~platform ~model
  in
  of_engine ?delta ?gamma ?method_ ?slack_mode engine sched

let to_array m =
  [| m.expected_makespan; m.makespan_std; m.makespan_entropy; m.avg_slack; m.slack_std;
     m.avg_lateness; m.prob_absolute; m.prob_relative |]

let calibrate_bounds pilot =
  if pilot = [] then invalid_arg "Robustness.calibrate_bounds: empty pilot";
  let median xs =
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.
  in
  (* 0.6745 = Φ⁻¹(0.75): centres A and R at 1/2 for a normal makespan *)
  let z = 0.6745 in
  let sigmas = List.map snd pilot in
  let rel = List.map (fun (mu, sigma) -> if mu > 0. then sigma /. mu else 0.) pilot in
  let delta = Float.max 1e-9 (z *. median sigmas) in
  let gamma = Float.max (1. +. 1e-12) (1. +. (z *. median rel)) in
  (delta, gamma)
