let init ?domains ?pool ?(chunk_size = 64) n f =
  if n < 0 then invalid_arg "Par_array.init: negative size";
  if chunk_size <= 0 then invalid_arg "Par_array.init: chunk_size must be positive";
  if n = 0 then [||]
  else begin
    let first = f 0 in
    let out = Array.make n first in
    let chunks = (n + chunk_size - 1) / chunk_size in
    Pool.run ?domains ?pool ~chunks (fun c ->
        let lo = c * chunk_size in
        let hi = Int.min n (lo + chunk_size) in
        let lo = if c = 0 then 1 else lo (* index 0 already computed *) in
        for i = lo to hi - 1 do
          out.(i) <- f i
        done);
    out
  end

let map ?domains ?pool ?chunk_size f a =
  init ?domains ?pool ?chunk_size (Array.length a) (fun i -> f a.(i))
