let default_domains () = Int.max 1 (Domain.recommended_domain_count () - 1)

(* Telemetry (active only while Obs sinks are enabled): every chunk gets
   a "pool.chunk" span, and each worker accumulates its busy time and
   chunk count into a slot-private cell. After the join the totals feed
   the registry, including the imbalance ratio — max worker busy time
   over the mean across workers that ran at least one chunk (1.0 =
   perfectly balanced). *)
let m_chunks = Obs.Metrics.counter "pool.chunks"
let m_busy_us = Obs.Metrics.counter "pool.busy_us"
let m_runs = Obs.Metrics.counter "pool.runs"
let g_imbalance = Obs.Metrics.gauge "pool.imbalance"

(* One submitted fan-out: the chunk function plus the atomic work-stealing
   counter and slot-private telemetry cells. Chunks are claimed through
   [next], so results depend only on the chunk decomposition — never on
   how many domains happened to run. *)
type job = {
  f : int -> unit;
  chunks : int;
  next : int Atomic.t;
  failure : exn option Atomic.t;
  busy : float array;
  count : int array;
  instrumented : bool;
}

let make_job ~slots ~chunks f =
  {
    f;
    chunks;
    next = Atomic.make 0;
    failure = Atomic.make None;
    busy = Array.make slots 0.;
    count = Array.make slots 0;
    instrumented = Obs.Metrics.enabled () || Obs.Span.enabled ();
  }

(* Set while the current domain is draining chunks; a nested [run] from
   inside a chunk executes inline instead of deadlocking on (or
   oversubscribing) the pool. *)
let in_worker_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let drain job slot =
  let rec loop () =
    let c = Atomic.fetch_and_add job.next 1 in
    if c < job.chunks then begin
      (try
         (* fault-injection boundary: an injected chunk failure takes the
            same first-failure path as a real one — remaining chunks
            drain, workers re-park, the caller gets the exception *)
         Fault.cut "pool.chunk";
         if job.instrumented then begin
           let t0 = Unix.gettimeofday () in
           Obs.Span.with_ ~name:"pool.chunk" (fun () -> job.f c);
           job.busy.(slot) <- job.busy.(slot) +. (Unix.gettimeofday () -. t0);
           job.count.(slot) <- job.count.(slot) + 1
         end
         else job.f c
       with exn ->
         (* record the first failure; later chunks still drain so that
            all domains terminate promptly *)
         ignore (Atomic.compare_and_set job.failure None (Some exn)));
      loop ()
    end
  in
  loop ()

let drain_as_worker job slot =
  Domain.DLS.set in_worker_key true;
  drain job slot;
  Domain.DLS.set in_worker_key false

(* Feed telemetry and re-raise the first chunk failure. Called once per
   job, after every participating domain is known to be done. *)
let finish job =
  if job.instrumented && job.chunks > 0 then begin
    let total_busy = Array.fold_left ( +. ) 0. job.busy in
    let max_busy = Array.fold_left Float.max 0. job.busy in
    let active =
      Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 job.count
    in
    Obs.Metrics.incr m_runs;
    Obs.Metrics.add m_chunks (Array.fold_left ( + ) 0 job.count);
    Obs.Metrics.add m_busy_us (int_of_float (total_busy *. 1e6));
    if active > 0 && total_busy > 0. then
      Obs.Metrics.set g_imbalance (max_busy /. (total_busy /. float_of_int active))
  end;
  match Atomic.get job.failure with Some exn -> raise exn | None -> ()

(* Legacy one-shot mode: spawn helper domains for this run only. Kept for
   explicit [?domains] callers (tests, ablations) — the persistent pool
   below is the hot path. *)
let run_ephemeral ~domains ~chunks f =
  let helpers = Int.min (domains - 1) (Int.max 0 (chunks - 1)) in
  let job = make_job ~slots:(helpers + 1) ~chunks f in
  let spawned =
    List.init helpers (fun i -> Domain.spawn (fun () -> drain_as_worker job (i + 1)))
  in
  drain_as_worker job 0;
  List.iter Domain.join spawned;
  finish job

(* Persistent pool: helper domains are spawned once and then parked on a
   condition variable between jobs, so a sweep of thousands of small
   fan-outs pays spawn/join once instead of per call. A job is published
   as (job, generation); a helper that has already served generation g
   sleeps until [seq] moves past g. [submit] serializes whole jobs, so
   one job's helpers are all back at the fence before the next job's
   generation is published. *)
type t = {
  helpers : int;
  mutex : Mutex.t; (* guards [job], [seq], [pending], [stop] *)
  wake : Condition.t; (* new generation or shutdown *)
  finished : Condition.t; (* [pending] reached zero *)
  submit : Mutex.t; (* serializes run_on callers *)
  mutable job : job option;
  mutable seq : int;
  mutable pending : int;
  mutable stop : bool;
  mutable handles : unit Domain.t list;
}

let worker_loop t slot () =
  Mutex.lock t.mutex;
  let seen = ref 0 in
  let running = ref true in
  while !running do
    if t.stop then running := false
    else if t.seq = !seen then Condition.wait t.wake t.mutex
    else begin
      seen := t.seq;
      let job = match t.job with Some j -> j | None -> assert false in
      Mutex.unlock t.mutex;
      drain_as_worker job slot;
      Mutex.lock t.mutex;
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.signal t.finished
    end
  done;
  Mutex.unlock t.mutex

let create ?domains () =
  let domains = match domains with Some d -> Int.max 1 d | None -> default_domains () in
  let t =
    {
      helpers = domains - 1;
      mutex = Mutex.create ();
      wake = Condition.create ();
      finished = Condition.create ();
      submit = Mutex.create ();
      job = None;
      seq = 0;
      pending = 0;
      stop = false;
      handles = [];
    }
  in
  t.handles <- List.init t.helpers (fun i -> Domain.spawn (worker_loop t (i + 1)));
  t

let size t = t.helpers + 1

let shutdown t =
  (* taking [submit] first lets an in-flight job complete *)
  Mutex.lock t.submit;
  Mutex.lock t.mutex;
  let handles = t.handles in
  if not t.stop then begin
    t.stop <- true;
    Condition.broadcast t.wake
  end;
  t.handles <- [];
  Mutex.unlock t.mutex;
  List.iter Domain.join handles;
  Mutex.unlock t.submit

(* Nested fan-out from inside a chunk: drain sequentially on the calling
   domain (same chunk decomposition, same first-failure semantics). *)
let run_inline ~chunks f =
  let job = make_job ~slots:1 ~chunks f in
  drain job 0;
  finish job

let run_on t ~chunks f =
  if Domain.DLS.get in_worker_key then run_inline ~chunks f
  else begin
    Mutex.lock t.submit;
    let job = make_job ~slots:(t.helpers + 1) ~chunks f in
    Mutex.lock t.mutex;
    if t.stop then begin
      Mutex.unlock t.mutex;
      Mutex.unlock t.submit;
      invalid_arg "Pool.run: pool has been shut down"
    end;
    t.job <- Some job;
    t.pending <- t.helpers;
    t.seq <- t.seq + 1;
    Condition.broadcast t.wake;
    Mutex.unlock t.mutex;
    drain_as_worker job 0;
    Mutex.lock t.mutex;
    while t.pending > 0 do
      Condition.wait t.finished t.mutex
    done;
    t.job <- None;
    Mutex.unlock t.mutex;
    Mutex.unlock t.submit;
    finish job
  end

(* Process-wide shared pool, created on first demand and torn down at
   exit. Callers that pass neither [?pool] nor [?domains] land here, so
   campaigns reuse one warm set of domains across every case.

   The cell may be refreshed: shutting the shared pool down (a server
   drain, a test) and asking for it again respawns a fresh pool, so
   serve → drain → serve cycles in one process keep working. The
   [at_exit] hook is registered exactly once and tears down whichever
   pool is current at exit — never a pool per respawn. *)
let shared_cell : t option Atomic.t = Atomic.make None
let shared_init = Mutex.create ()
let shared_at_exit_registered = ref false

let stopped t =
  Mutex.lock t.mutex;
  let s = t.stop in
  Mutex.unlock t.mutex;
  s

let shared () =
  match Atomic.get shared_cell with
  | Some t when not (stopped t) -> t
  | _ ->
    Mutex.lock shared_init;
    let t =
      match Atomic.get shared_cell with
      | Some t when not (stopped t) -> t
      | _ ->
        let t = create () in
        if not !shared_at_exit_registered then begin
          shared_at_exit_registered := true;
          at_exit (fun () ->
              match Atomic.get shared_cell with
              | Some t -> shutdown t
              | None -> ())
        end;
        Atomic.set shared_cell (Some t);
        t
    in
    Mutex.unlock shared_init;
    t

let run ?domains ?pool ~chunks f =
  if chunks < 0 then invalid_arg "Pool.run: negative chunk count";
  if Domain.DLS.get in_worker_key then run_inline ~chunks f
  else
    match (pool, domains) with
    | Some t, _ -> run_on t ~chunks f
    | None, Some d -> run_ephemeral ~domains:(Int.max 1 d) ~chunks f
    | None, None -> run_on (shared ()) ~chunks f
