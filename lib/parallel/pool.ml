let default_domains () = Int.max 1 (Domain.recommended_domain_count () - 1)

(* Telemetry (active only while Obs sinks are enabled): every chunk gets
   a "pool.chunk" span, and each worker accumulates its busy time and
   chunk count into a slot-private cell. After the join the totals feed
   the registry, including the imbalance ratio — max worker busy time
   over the mean across workers that ran at least one chunk (1.0 =
   perfectly balanced). *)
let m_chunks = Obs.Metrics.counter "pool.chunks"
let m_busy_us = Obs.Metrics.counter "pool.busy_us"
let m_runs = Obs.Metrics.counter "pool.runs"
let g_imbalance = Obs.Metrics.gauge "pool.imbalance"

let run ?domains ~chunks f =
  if chunks < 0 then invalid_arg "Pool.run: negative chunk count";
  let domains = match domains with Some d -> Int.max 1 d | None -> default_domains () in
  let instrumented = Obs.Metrics.enabled () || Obs.Span.enabled () in
  let next = Atomic.make 0 in
  let failure = Atomic.make None in
  let helpers = Int.min (domains - 1) (Int.max 0 (chunks - 1)) in
  let n_workers = helpers + 1 in
  let busy = Array.make n_workers 0. in
  let count = Array.make n_workers 0 in
  let worker slot () =
    let rec loop () =
      let c = Atomic.fetch_and_add next 1 in
      if c < chunks then begin
        (try
           if instrumented then begin
             let t0 = Unix.gettimeofday () in
             Obs.Span.with_ ~name:"pool.chunk" (fun () -> f c);
             busy.(slot) <- busy.(slot) +. (Unix.gettimeofday () -. t0);
             count.(slot) <- count.(slot) + 1
           end
           else f c
         with exn ->
           (* record the first failure; later chunks still drain so that
              all domains terminate promptly *)
           ignore (Atomic.compare_and_set failure None (Some exn)));
        loop ()
      end
    in
    loop ()
  in
  let spawned = List.init helpers (fun i -> Domain.spawn (worker (i + 1))) in
  worker 0 ();
  List.iter Domain.join spawned;
  if instrumented && chunks > 0 then begin
    let total_busy = Array.fold_left ( +. ) 0. busy in
    let max_busy = Array.fold_left Float.max 0. busy in
    let active = Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 count in
    Obs.Metrics.incr m_runs;
    Obs.Metrics.add m_chunks (Array.fold_left ( + ) 0 count);
    Obs.Metrics.add m_busy_us (int_of_float (total_busy *. 1e6));
    if active > 0 && total_busy > 0. then
      Obs.Metrics.set g_imbalance (max_busy /. (total_busy /. float_of_int active))
  end;
  match Atomic.get failure with Some exn -> raise exn | None -> ()
