(** Parallel array construction on top of {!Pool}. *)

val init : ?domains:int -> ?pool:Pool.t -> ?chunk_size:int -> int -> (int -> 'a) -> 'a array
(** [init n f] is [Array.init n f] with the index range cut into chunks
    (default size 64) executed across domains. [f] must be safe to run
    concurrently for distinct indices. Worker selection follows
    {!Pool.run}: explicit [?pool], legacy one-shot [?domains], or the
    shared persistent pool. *)

val map : ?domains:int -> ?pool:Pool.t -> ?chunk_size:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]. *)
