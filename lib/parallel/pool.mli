(** Minimal domain-based fan-out for embarrassingly parallel sweeps.

    Work is cut into a {e fixed} number of chunks claimed through an
    atomic counter, so results depend only on the chunk decomposition —
    never on how many domains happened to run. This is what keeps the
    experiment pipeline bit-reproducible whatever the machine size.

    Two execution modes share that contract:
    - a {e persistent} pool ({!t}): helper domains are spawned once and
      parked on a condition variable between jobs, so campaigns running
      thousands of small fan-outs pay spawn/join once. This is the
      default — callers that pass nothing use the process-wide
      {!shared} pool.
    - a {e legacy one-shot} mode ([?domains]): helper domains are
      spawned and joined per call. Kept for tests and ablations that
      pin an explicit domain count. *)

val default_domains : unit -> int
(** [max 1 (recommended_domain_count − 1)] — leave one core for the
    orchestrating domain. *)

type t
(** A persistent worker pool. *)

val create : ?domains:int -> unit -> t
(** [create ()] spawns [domains − 1] helper domains (default
    {!default_domains}) that park between jobs. The calling domain
    participates in every job, so a pool of [domains:1] runs inline. *)

val size : t -> int
(** Number of domains that participate in a job (helpers + caller). *)

val shutdown : t -> unit
(** Wake and join the helper domains. An in-flight job completes first;
    subsequent {!run} calls on the pool raise [Invalid_argument].
    Idempotent. Must not be called from inside a pool job. *)

val shared : unit -> t
(** The process-wide pool, created on first use and shut down via a
    single [at_exit] hook (registered exactly once, however many times
    the pool is respawned). If the current shared pool has been
    {!shutdown} — e.g. across a service's serve → drain → serve cycle —
    the next call transparently spawns a replacement, so holders of
    [shared ()] results should re-fetch rather than cache across a
    shutdown. *)

val run : ?domains:int -> ?pool:t -> chunks:int -> (int -> unit) -> unit
(** [run ~chunks f] calls [f c] exactly once for every
    [c ∈ \[0, chunks)], distributing chunks over worker domains (the
    calling domain participates). [f] must only write to chunk-private
    state. The first exception raised by any chunk is re-raised after
    all workers have drained.

    Worker selection: [?pool] runs on that pool; otherwise [?domains]
    spawns that many one-shot domains (legacy mode); otherwise the
    {!shared} pool is used. A nested [run] from inside a chunk always
    drains inline on the calling domain.

    While any {!Obs} sink is enabled, each chunk is recorded as a
    ["pool.chunk"] span and the run feeds the [pool.chunks],
    [pool.busy_us] and [pool.runs] counters plus the [pool.imbalance]
    gauge (max worker busy time over the mean across active workers).
    With sinks disabled the only cost is one atomic load per run.

    Each chunk also carries the ["pool.chunk"] [Fault] probe: an
    injected exception is indistinguishable from a chunk raising — the
    first failure is re-raised in the caller after all workers drain,
    and a persistent pool's parked domains are unaffected. *)
