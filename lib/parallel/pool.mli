(** Minimal domain-based fan-out for embarrassingly parallel sweeps.

    Work is cut into a {e fixed} number of chunks claimed through an
    atomic counter, so results depend only on the chunk decomposition —
    never on how many domains happened to run. This is what keeps the
    experiment pipeline bit-reproducible whatever the machine size. *)

val default_domains : unit -> int
(** [max 1 (recommended_domain_count − 1)] — leave one core for the
    orchestrating domain. *)

val run : ?domains:int -> chunks:int -> (int -> unit) -> unit
(** [run ~chunks f] calls [f c] exactly once for every
    [c ∈ \[0, chunks)], distributing chunks over [domains] worker domains
    (the calling domain participates). [f] must only write to
    chunk-private state. The first exception raised by any chunk is
    re-raised after all domains have joined.

    While any {!Obs} sink is enabled, each chunk is recorded as a
    ["pool.chunk"] span and the run feeds the [pool.chunks],
    [pool.busy_us] and [pool.runs] counters plus the [pool.imbalance]
    gauge (max worker busy time over the mean across active workers).
    With sinks disabled the only cost is one atomic load per run. *)
