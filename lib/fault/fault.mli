(** Deterministic fault injection for crash-safety testing.

    Probe points ([{!cut} "campaign.write"], ["runner.eval"],
    ["pool.chunk"], …) are compiled into the production paths at the
    boundaries where a crash, an I/O error or a stall would hurt:
    checkpoint writes, per-case evaluation, pool chunk execution. With
    no spec configured a probe is a single atomic load and a branch —
    the same zero-cost-off discipline as [Obs] — so bit-reproducibility
    and performance of normal runs are unaffected.

    A fault {e spec} arms probes from tests or the [repro] CLI
    ([--fault-spec]). The grammar is

    {v
    spec    ::= clause (';' clause)*
    clause  ::= point ':' action ('@' N)? (':' key '=' value)*
    action  ::= 'fail' | 'delay'
    v}

    where [point] names a probe, [@N] makes hit [N] (1-based, default 1)
    the first eligible one, and the options are:
    - [count=K] — fire on at most [K] eligible hits (default 1);
    - [p=P] — fire each eligible hit with probability [P] (default 1),
      drawn from a private SplitMix64 stream so firings are a pure
      function of the spec;
    - [seed=S] — seed of that stream (default 0);
    - [ms=M] — delay duration in milliseconds (default 10; [delay] only).

    Examples: ["runner.eval:fail@1"] fails the first case evaluation
    once; ["campaign.write:fail:count=3"] fails the first three
    checkpoint writes; ["pool.chunk:delay:p=0.01:seed=7:ms=5"] delays
    ~1% of pool chunks by 5 ms. *)

exception Injected of string
(** Raised by a firing [fail] clause; the payload is the probe point. *)

val enabled : unit -> bool
(** Whether any spec is armed. *)

val configure : spec:string -> unit
(** Parse [spec], replace any previous configuration, reset hit counts
    and arm the probes. Raises [Invalid_argument] on a malformed spec
    (unknown action, bad numbers, empty spec). *)

val reset : unit -> unit
(** Disarm every probe and clear clauses and hit counts. Probes return
    to their zero-cost no-op behaviour. *)

val cut : string -> unit
(** [cut point] is a probe. Disabled: a no-op. Enabled: counts the hit
    and fires the first matching eligible clause — [fail] raises
    {!Injected}, [delay] sleeps. Hit accounting is process-wide and
    mutex-protected, so probes may sit on concurrent paths (pool
    chunks); eligibility is deterministic given the spec and the total
    hit order. *)

val hits : string -> int
(** Observed hit count for [point] since the last {!configure}/{!reset}
    (0 while disabled). For tests. *)
