exception Injected of string

type action =
  | Fail
  | Delay of float (* seconds *)

type clause = {
  point : string;
  action : action;
  from_hit : int; (* first eligible hit, 1-based *)
  max_fires : int;
  prob : float;
  rng : Prng.Splitmix.t;
  mutable fired : int;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

(* Guards [clauses] and [hit_counts]; only taken when the flag is on, so
   the disabled path stays a single atomic load. *)
let lock = Mutex.create ()
let clauses : clause list ref = ref []
let hit_counts : (string, int ref) Hashtbl.t = Hashtbl.create 8

let reset () =
  Atomic.set enabled_flag false;
  Mutex.protect lock (fun () ->
      clauses := [];
      Hashtbl.reset hit_counts)

let bad fmt = Printf.ksprintf (fun m -> invalid_arg ("Fault.configure: " ^ m)) fmt

let parse_clause str =
  match String.split_on_char ':' (String.trim str) with
  | point :: action_s :: kvs when point <> "" && action_s <> "" ->
    let action_name, from_hit =
      match String.index_opt action_s '@' with
      | None -> (action_s, 1)
      | Some i ->
        let n = String.sub action_s (i + 1) (String.length action_s - i - 1) in
        (match int_of_string_opt n with
        | Some k when k >= 1 -> (String.sub action_s 0 i, k)
        | _ -> bad "bad hit index %S in %S" n str)
    in
    let count = ref 1 and prob = ref 1.0 and seed = ref 0L and ms = ref 10. in
    List.iter
      (fun kv ->
        match String.index_opt kv '=' with
        | None -> bad "malformed option %S in %S" kv str
        | Some i ->
          let k = String.sub kv 0 i
          and v = String.sub kv (i + 1) (String.length kv - i - 1) in
          (match k with
          | "count" -> (
            match int_of_string_opt v with
            | Some c when c >= 1 -> count := c
            | _ -> bad "count must be a positive int, got %S" v)
          | "p" -> (
            match float_of_string_opt v with
            | Some p when p >= 0. && p <= 1. -> prob := p
            | _ -> bad "p must be in [0,1], got %S" v)
          | "seed" -> (
            match Int64.of_string_opt v with
            | Some s -> seed := s
            | _ -> bad "seed must be an int, got %S" v)
          | "ms" -> (
            match float_of_string_opt v with
            | Some m when m >= 0. -> ms := m
            | _ -> bad "ms must be a nonnegative number, got %S" v)
          | other -> bad "unknown option %S" other))
      kvs;
    let action =
      match action_name with
      | "fail" -> Fail
      | "delay" -> Delay (!ms /. 1000.)
      | other -> bad "unknown action %S (fail|delay)" other
    in
    {
      point;
      action;
      from_hit;
      max_fires = !count;
      prob = !prob;
      rng = Prng.Splitmix.create !seed;
      fired = 0;
    }
  | _ -> bad "malformed clause %S (want point:action[@N][:k=v]...)" str

let configure ~spec =
  let cs =
    String.split_on_char ';' spec
    |> List.filter (fun s -> String.trim s <> "")
    |> List.map parse_clause
  in
  (match cs with [] -> bad "empty spec" | _ -> ());
  Mutex.protect lock (fun () ->
      clauses := cs;
      Hashtbl.reset hit_counts);
  Atomic.set enabled_flag true

let cut point =
  if Atomic.get enabled_flag then begin
    let firing =
      Mutex.protect lock (fun () ->
          let h =
            match Hashtbl.find_opt hit_counts point with
            | Some r ->
              incr r;
              !r
            | None ->
              Hashtbl.add hit_counts point (ref 1);
              1
          in
          let rec first = function
            | [] -> None
            | c :: rest ->
              if
                c.point = point && h >= c.from_hit && c.fired < c.max_fires
                && (c.prob >= 1. || Prng.Splitmix.next_float c.rng < c.prob)
              then begin
                c.fired <- c.fired + 1;
                Some c.action
              end
              else first rest
          in
          first !clauses)
    in
    (* act outside the lock so a delay never blocks other probes *)
    match firing with
    | None -> ()
    | Some Fail -> raise (Injected point)
    | Some (Delay s) -> if s > 0. then Unix.sleepf s
  end

let hits point =
  if not (Atomic.get enabled_flag) then 0
  else
    Mutex.protect lock (fun () ->
        match Hashtbl.find_opt hit_counts point with Some r -> !r | None -> 0)
