type correlation_shift = {
  fixed_mk_vs_std : float;
  variable_mk_vs_std : float;
  fixed_cluster : float;
  variable_cluster : float;
}

let variable_task_ul task = if task mod 3 = 0 then 1.9 else 1.02

let sweep_correlations ?domains ~scale ~rng graph platform model =
  let n_procs = Platform.n_procs platform in
  let count = Scale.schedules scale 2000 in
  let scheds =
    Array.of_list (Sched.Random_sched.generate_many ~rng ~graph ~n_procs ~count)
  in
  let engine = Makespan.Engine.create ~graph ~platform ~model in
  let rows =
    Parallel.Par_array.init ?domains ~chunk_size:16 (Array.length scheds) (fun i ->
        let d = Makespan.Engine.eval engine scheds.(i) in
        let mu = Distribution.Dist.mean d in
        ( mu,
          Distribution.Dist.std d,
          Distribution.Dist.mean_above d mu -. mu ))
  in
  let col f = Array.map f rows in
  let mk = col (fun (m, _, _) -> m) in
  let sd = col (fun (_, s, _) -> s) in
  let late = col (fun (_, _, l) -> l) in
  (Stats.Correlation.pearson mk sd, Stats.Correlation.pearson sd late)

let correlation_under_variable_ul ?domains ?(scale = Scale.of_env ()) ?(seed = 51L) () =
  Obs.Progress.phase "ablation:variable-ul" @@ fun () ->
  let rng = Prng.Xoshiro.create seed in
  let graph = Workloads.Random_dag.generate ~rng ~n:30 () in
  let platform =
    Platform.Gen.cvb ~rng ~n_tasks:(Dag.Graph.n_tasks graph) ~n_procs:8 ~mu_task:20.
      ~v_task:0.5 ~v_mach:0.5 ()
  in
  let fixed = Workloads.Stochastify.make ~ul:1.2 () in
  let variable =
    Workloads.Stochastify.make_variable ~base_ul:1.05 ~task_ul:variable_task_ul ()
  in
  let fixed_mk_vs_std, fixed_cluster =
    sweep_correlations ?domains ~scale ~rng:(Prng.Xoshiro.split rng) graph platform fixed
  in
  let variable_mk_vs_std, variable_cluster =
    sweep_correlations ?domains ~scale ~rng:(Prng.Xoshiro.split rng) graph platform
      variable
  in
  { fixed_mk_vs_std; variable_mk_vs_std; fixed_cluster; variable_cluster }

let render_correlation t =
  Render.table
    ~title:
      "Ablation — does variable UL break the makespan–robustness link? (§VIII)\n\
       Pearson correlations over random schedules of one 30-task case\n\
       (expected shape: E(M)↔σ_M weakens under variable UL; the\n\
       dispersion-metric cluster σ_M↔lateness stays ≈ 1)"
    ~headers:[ "uncertainty"; "E(M) vs σ(M)"; "σ(M) vs lateness" ]
    ~rows:
      [
        [ "constant UL = 1.2"; Render.cell t.fixed_mk_vs_std; Render.cell t.fixed_cluster ];
        [ "variable UL 1.02/1.9"; Render.cell t.variable_mk_vs_std;
          Render.cell t.variable_cluster ];
      ]

type shape_row = {
  shape_name : string;
  mk_vs_std : float;
  cluster : float;
}

let cluster_under_shapes ?domains ?(scale = Scale.of_env ()) ?(seed = 61L) () =
  Obs.Progress.phase "ablation:shapes" @@ fun () ->
  let rng = Prng.Xoshiro.create seed in
  let graph = Workloads.Random_dag.generate ~rng ~n:25 () in
  let platform =
    Platform.Gen.cvb ~rng ~n_tasks:(Dag.Graph.n_tasks graph) ~n_procs:5 ~mu_task:20.
      ~v_task:0.5 ~v_mach:0.5 ()
  in
  List.map
    (fun (shape_name, shape) ->
      let model = Workloads.Stochastify.make_shaped ~shape ~ul:1.2 () in
      let mk_vs_std, cluster =
        sweep_correlations ?domains ~scale ~rng:(Prng.Xoshiro.split rng) graph platform
          model
      in
      { shape_name; mk_vs_std; cluster })
    [ ("beta(2,5) [paper]", Workloads.Stochastify.Beta { alpha = 2.; beta = 5. });
      ("uniform", Workloads.Stochastify.Uniform);
      ("triangular(0.3)", Workloads.Stochastify.Triangular { mode = 0.3 });
      ("oscillating", Workloads.Stochastify.Oscillating) ]

let render_shapes rows =
  Render.table
    ~title:
      "Ablation — does the metric cluster survive non-standard duration shapes? (§VIII)\n\
       Pearson correlations over random schedules of one 25-task case per shape\n\
       (CLT prediction: σ(M) ↔ lateness stays ≈ 1 for every shape)"
    ~headers:[ "perturbation shape"; "E(M) vs σ(M)"; "σ(M) vs lateness" ]
    ~rows:
      (List.map
         (fun r -> [ r.shape_name; Render.cell r.mk_vs_std; Render.cell r.cluster ])
         rows)

type pareto = {
  population : int;
  front_size : int;
  overall_r : float;
  elite_r : float;
  front_r : float;
  front : (float * float) list;
}

let pareto_front points =
  (* minimize both coordinates: keep points not dominated by any other *)
  List.filter
    (fun (m, s) ->
      not
        (List.exists
           (fun (m', s') -> m' <= m && s' <= s && (m' < m || s' < s))
           points))
    points

let pareto_front_study ?domains ?(scale = Scale.of_env ()) ?(seed = 71L) () =
  Obs.Progress.phase "ablation:pareto" @@ fun () ->
  let rng = Prng.Xoshiro.create seed in
  let graph = Workloads.Random_dag.generate ~rng ~n:30 () in
  let platform =
    Platform.Gen.cvb ~rng ~n_tasks:(Dag.Graph.n_tasks graph) ~n_procs:8 ~mu_task:20.
      ~v_task:0.5 ~v_mach:0.5 ()
  in
  (* variable UL so that E(M) and σ_M are genuinely competing objectives *)
  let model =
    Workloads.Stochastify.make_variable ~base_ul:1.05 ~task_ul:variable_task_ul ()
  in
  let count = Scale.schedules scale 20000 in
  let scheds =
    (* random schedules + the makespan-centric heuristics + the
       RobustHEFT κ-sweep, which populates the low-σ corner *)
    Array.of_list
      (Sched.Random_sched.generate_many ~rng ~graph ~n_procs:8 ~count
      @ List.map (fun (_, h) -> h graph platform) Runner.heuristics
      @ List.map
          (fun kappa -> Sched.Robust_heft.schedule ~kappa graph platform model)
          [ 0.5; 1.; 2.; 4.; 8. ])
  in
  let engine = Makespan.Engine.create ~graph ~platform ~model in
  let points =
    Parallel.Par_array.init ?domains ~chunk_size:16 (Array.length scheds) (fun i ->
        let d = Makespan.Engine.eval engine scheds.(i) in
        (Distribution.Dist.mean d, Distribution.Dist.std d))
  in
  let all = Array.to_list points in
  let front =
    List.sort_uniq compare (pareto_front all)
  in
  let pearson pts =
    if List.length pts < 3 then Float.nan
    else
      Stats.Correlation.pearson
        (Array.of_list (List.map fst pts))
        (Array.of_list (List.map snd pts))
  in
  (* "near the front": the best decile by expected makespan *)
  let elite =
    let sorted = List.sort compare all in
    let k = Int.max 3 (List.length sorted / 10) in
    List.filteri (fun i _ -> i < k) sorted
  in
  {
    population = Array.length points;
    front_size = List.length front;
    overall_r = pearson all;
    elite_r = pearson elite;
    front_r = pearson front;
    front;
  }

let render_pareto t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "Ablation — correlation near the Pareto front (§VIII)\n\
        %d schedules; (E(M), σ(M)) front has %d points\n\
        Pearson(E(M), σ(M)): overall %+.3f, best decile %+.3f, front %+.3f\n\
        (the global correlation is what the paper measures; the front itself\n\
        is where the conjectured trade-off lives: along it, lower E(M) comes\n\
        with higher σ(M))\n\n"
       t.population t.front_size t.overall_r t.elite_r t.front_r);
  Buffer.add_string buf
    (Render.table ~title:"Pareto front (by expected makespan):"
       ~headers:[ "E(M)"; "σ(M)" ]
       ~rows:(List.map (fun (m, s) -> [ Render.cell m; Render.cell s ]) t.front));
  Buffer.contents buf

type tradeoff_point = {
  kappa : float;
  expected_makespan : float;
  makespan_std : float;
}

let robust_heft_tradeoff ?(seed = 17L) ?(kappas = [ 0.; 0.5; 1.; 2.; 4. ]) () =
  Obs.Progress.phase "ablation:tradeoff" @@ fun () ->
  let rng = Prng.Xoshiro.create seed in
  let graph = Workloads.Random_dag.generate ~rng ~n:40 () in
  let platform =
    Platform.Gen.cvb ~rng ~n_tasks:(Dag.Graph.n_tasks graph) ~n_procs:6 ~mu_task:20.
      ~v_task:0.5 ~v_mach:0.5 ()
  in
  let model =
    Workloads.Stochastify.make_variable ~base_ul:1.05 ~task_ul:variable_task_ul ()
  in
  let engine = Makespan.Engine.create ~graph ~platform ~model in
  List.map
    (fun kappa ->
      let sched = Sched.Robust_heft.schedule ~kappa graph platform model in
      let d = Makespan.Engine.eval engine sched in
      {
        kappa;
        expected_makespan = Distribution.Dist.mean d;
        makespan_std = Distribution.Dist.std d;
      })
    kappas

let render_tradeoff points =
  Render.table
    ~title:
      "Ablation — RobustHEFT risk-adjustment sweep under variable UL (§VIII)\n\
       (κ = 0 is HEFT-on-means; larger κ should trade E(M) for σ(M))"
    ~headers:[ "kappa"; "E(M)"; "σ(M)" ]
    ~rows:
      (List.map
         (fun p ->
           [ Render.cell p.kappa; Render.cell p.expected_makespan;
             Render.cell p.makespan_std ])
         points)
