(** Progress logging for the long-running sweeps.

    Enable with [Logs.set_level (Some Logs.Info)] plus any reporter (the
    [repro] CLI does this under [-v]; [-vv] additionally enables
    {!debug}); silent by default. *)

val src : Logs.src

val warn : ('a, Format.formatter, unit, unit) format4 -> 'a
(** [warn fmt …] logs at warning level on {!src} — recoverable anomalies
    such as an invalidated checkpoint or a retried case failure. *)

val info : ('a, Format.formatter, unit, unit) format4 -> 'a
(** [info fmt …] logs at info level on {!src} (eagerly formatted; these
    messages are emitted a handful of times per sweep). *)

val debug : ('a, Format.formatter, unit, unit) format4 -> 'a
(** [debug fmt …] logs at debug level on {!src} — per-case details
    (calibration constants, checkpoint decisions) too chatty for [-v]. *)

val time : ('a, Format.formatter, unit, (unit -> 'b) -> 'b) format4 -> 'a
(** [time fmt … f] runs [f ()] and logs "<label>: <elapsed> s" at info
    level, also when [f] raises: [time "fig%d sweep" 1 run]. *)
