(** Pearson-correlation matrices over metric vectors, in the paper's
    orientation (slack and probabilistic metrics inverted so optimizing
    every metric means minimizing it — §VI). *)

val matrix :
  ?invert:bool -> ?method_:[ `Pearson | `Spearman ] -> float array array -> float array array
(** [matrix rows] is the 8×8 correlation matrix over the (by default
    inverted) metric columns. Nan handling is explicit: a {e degenerate}
    column — every value bitwise-equal to the first (exact equality, not
    a variance tolerance: a column constant only up to rounding noise
    still correlates normally), fewer than two schedules, or containing
    a nan — yields [nan] in every off-diagonal cell it touches (the
    diagonal stays 1), so one constant metric can never contribute a
    spurious ±1. {!mean_std} then skips those cells per entry.
    [`Spearman] (rank correlation) is the robustness check for the
    "slightly curved" point clouds the paper mentions; default
    [`Pearson], as in the paper.

    @raise Invalid_argument on an empty [rows] (zero schedules). *)

val of_result : Runner.result -> float array array
(** Correlations over the {e random} schedules of a run, as the paper
    computes them (heuristic points are plotted but excluded). *)

val mean_std : float array array list -> float array array * float array array
(** Element-wise mean and (population) standard deviation across several
    correlation matrices — the two triangles of Fig. 6. Nan entries are
    skipped {e per cell}: a single degenerate case cannot blank a cell
    that other cases populated; a cell that is nan in {e every} matrix
    stays nan in both outputs.

    @raise Invalid_argument on an empty list. *)
