(** Composable cooperative-stop scopes over SIGINT/SIGTERM.

    The PR-4 campaign installed its own [Sys.signal] handlers and
    restored the saved previous ones on exit. That clobbers any outer
    consumer of the same signals: when the evaluation service (which
    uses SIGTERM for graceful drain) runs a campaign job, the campaign's
    handler would swallow the drain request for the whole duration of
    the sweep — and nested campaigns had the same problem among
    themselves.

    This module owns the process's SIGINT/SIGTERM handler instead and
    fans a signal out to {e every} active scope: each consumer enters
    its own scope, polls only its own flag, and exits the scope when
    done. The real handler is installed when the first scope enters and
    the previously installed behaviour is restored when the last one
    exits, so code outside any scope keeps the default signal
    semantics.

    Handlers only set atomic flags (they run between allocations,
    anywhere, on any domain), so consumers must poll {!requested} at
    their own safe boundaries — case boundaries for campaigns, request
    boundaries for the service. *)

type scope

val with_scope : (scope -> 'a) -> 'a
(** [with_scope f] runs [f] with a fresh active scope; the scope is
    deactivated when [f] returns or raises. Scopes nest freely and may
    be entered from any domain. *)

val requested : scope -> bool
(** True once a SIGINT/SIGTERM arrived (or {!request} was called) while
    the scope was active. Stays true until {!clear}. *)

val clear : scope -> unit
(** Re-arm the scope (a consumer that finished a cooperative shutdown
    and wants to keep running, e.g. serve → drain → serve cycles). *)

val request : unit -> unit
(** Programmatic stop: sets the flag of every active scope, exactly as
    a signal would. Safe from any domain. *)

val active : unit -> int
(** Number of currently active scopes (diagnostics / tests). *)
