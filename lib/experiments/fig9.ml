type row = {
  name : string;
  description : string;
  expected_makespan : float;
  makespan_std : float;
  total_slack : float;
}

type t = row list

let run ?(n_tasks = 12) ?(ul = 1.1) () =
  if n_tasks < 4 then invalid_arg "Fig9.run: need at least 4 parallel tasks";
  Obs.Progress.phase "fig9" @@ fun () ->
  let graph = Workloads.Classic.join ~n:n_tasks ~volume:0. () in
  let join = n_tasks in
  let n_procs = n_tasks in
  (* identical computation times: the i.i.d. premise of the sketch *)
  let etc = Array.make_matrix (n_tasks + 1) n_procs 20. in
  let zeros = Array.make_matrix n_procs n_procs 0. in
  let platform = Platform.make ~etc ~tau:zeros ~latency:zeros in
  let model = Workloads.Stochastify.make ~ul () in
  let schedule_of layout =
    (* layout: per parallel task, its processor; join runs last on proc 0 *)
    let proc_of = Array.append layout [| 0 |] in
    let order =
      Array.init n_procs (fun p ->
          let mine = ref [] in
          for t = n_tasks - 1 downto 0 do
            if layout.(t) = p then mine := t :: !mine
          done;
          let mine = Array.of_list !mine in
          if p = 0 then Array.append mine [| join |] else mine)
    in
    Sched.Schedule.make ~graph ~n_procs ~proc_of ~order
  in
  let wide = Array.init n_tasks (fun t -> t) in
  let balanced = Array.init n_tasks (fun t -> t mod 3) in
  let chain = Array.make n_tasks 0 in
  let slack_mix =
    (* the last three tasks run alone; the rest chain on processor 0 *)
    Array.init n_tasks (fun t -> if t >= n_tasks - 3 then 1 + (t - (n_tasks - 3)) else 0)
  in
  let engine = Makespan.Engine.create ~graph ~platform ~model in
  let evaluate name description layout =
    let sched = schedule_of layout in
    let { Makespan.Engine.makespan = dist; slack } = Makespan.Engine.analyze engine sched in
    {
      name;
      description;
      expected_makespan = Distribution.Dist.mean dist;
      makespan_std = Distribution.Dist.std dist;
      total_slack = slack.Sched.Slack.total;
    }
  in
  [
    evaluate "wide" "one task per processor (no slack, robust)" wide;
    evaluate "balanced" "equal chains on 3 processors (no slack, CLT)" balanced;
    evaluate "chain" "all tasks on one processor (no slack, non-robust)" chain;
    evaluate "slack-mix" "long chain + 3 idle-rich singletons (much slack, non-robust)"
      slack_mix;
  ]

let render t =
  Render.table
    ~title:
      "Fig. 9 — slack vs robustness on a join graph of i.i.d. tasks\n\
       (paper shape: the large-slack schedule is NOT the low-σ one)"
    ~headers:[ "schedule"; "E(M)"; "σ(M)"; "Σ slack"; "layout" ]
    ~rows:
      (List.map
         (fun r ->
           [ r.name; Render.cell r.expected_makespan; Render.cell r.makespan_std;
             Render.cell r.total_slack; r.description ])
         t)
