type t = {
  ks : float;
  cm : float;
  xs : float array;
  calculated : float array;
  experimental : float array;
}

let run ?domains ?(scale = Scale.of_env ()) ?(seed = 21L) () =
  Obs.Progress.phase "fig2" @@ fun () ->
  let rng = Prng.Xoshiro.create seed in
  let model = Workloads.Stochastify.make ~ul:1.1 () in
  let n = 100 in
  let graph = Workloads.Random_dag.generate ~rng ~n () in
  let platform =
    Platform.Gen.cvb ~rng ~n_tasks:(Dag.Graph.n_tasks graph) ~n_procs:16 ~mu_task:20.
      ~v_task:0.5 ~v_mach:0.5 ()
  in
  let sched = Sched.Random_sched.generate ~rng ~graph ~n_procs:16 in
  let engine = Makespan.Engine.create ~graph ~platform ~model in
  let dist = Makespan.Engine.eval engine sched in
  let mc_count = Scale.realizations scale 100000 in
  let emp = Makespan.Montecarlo.run ?domains ~rng ~count:mc_count sched platform model in
  let ks = Stats.Distance.ks (Analytic dist) (Sampled emp) in
  let cm = Stats.Distance.cm_area (Analytic dist) (Sampled emp) in
  let emp_dist = Distribution.Empirical.to_dist emp in
  let lo1, hi1 = Distribution.Dist.support dist in
  let lo2, hi2 = Distribution.Dist.support emp_dist in
  let lo = Float.min lo1 lo2 and hi = Float.max hi1 hi2 in
  let points = 48 in
  let xs = Numerics.Array_ops.linspace lo hi points in
  {
    ks;
    cm;
    xs;
    calculated = Array.map (Distribution.Dist.pdf_at dist) xs;
    experimental = Array.map (Distribution.Dist.pdf_at emp_dist) xs;
  }

let render t =
  let rows =
    Array.to_list
      (Array.mapi
         (fun i x ->
           [ Render.cell x; Render.cell_sci t.calculated.(i); Render.cell_sci t.experimental.(i) ])
         t.xs)
  in
  Render.table
    ~title:
      (Printf.sprintf
         "Fig. 2 — calculated vs experimental makespan density (KS = %.3g, CM = %.3g)\n\
          (paper shape: curves nearly coincide despite mediocre KS)"
         t.ks t.cm)
    ~headers:[ "makespan"; "calculated"; "experimental" ]
    ~rows
