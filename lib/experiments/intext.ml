type rel_prob = {
  per_case : float list;
  mean : float;
  std : float;
}

(* metric indices in Robustness.labels order *)
let idx_makespan = 0
let idx_mk_std = 1
let idx_rel_prob = 7

let rel_prob_vs_std results =
  if results = [] then invalid_arg "Intext.rel_prob_vs_std: no results";
  let per_case =
    List.filter_map
      (fun result ->
        let rows = Runner.random_rows result in
        let xs =
          Array.map
            (fun row ->
              (* R(γ) divided by E(M), inverted (reciprocal) so smaller is
                 better. For a near-normal makespan R ≈ 2Φ(E(M)(γ−1)/σ)−1,
                 so E(M)/R is linear in σ_M — the §VII claim. *)
              row.(idx_makespan) /. Float.max 1e-12 row.(idx_rel_prob))
            rows
        in
        let ys = Array.map (fun row -> row.(idx_mk_std)) rows in
        let r = Stats.Correlation.pearson xs ys in
        if Float.is_nan r then None else Some r)
      results
  in
  (match per_case with [] -> invalid_arg "Intext.rel_prob_vs_std: all degenerate" | _ -> ());
  let a = Array.of_list per_case in
  {
    per_case;
    mean = Stats.Descriptive.mean a;
    std = sqrt (Stats.Descriptive.population_variance a);
  }

let render_rel_prob t =
  Printf.sprintf
    "In-text (§VII) — Pearson of the makespan-divided relative probabilistic\n\
     metric (inverted: E(M)/R) against σ_M over %d cases:\n\
     mean = %.4f, std = %.4f   (paper: 0.998 ± 0.009)\n"
    (List.length t.per_case) t.mean t.std

type method_row = {
  case_id : string;
  method_name : string;
  ks : float;
  cm : float;
}

let default_cases () =
  [ Case.make ~kind:Case.Cholesky ~n_target:10 ~n_procs:3 ~ul:1.1 ();
    Case.make ~kind:Case.Random_graph ~n_target:30 ~n_procs:8 ~ul:1.1 ();
    Case.make ~kind:Case.Gauss_elim ~n_target:103 ~n_procs:16 ~ul:1.1 () ]

let methods_vs_mc ?domains ?(scale = Scale.of_env ()) ?cases () =
  Obs.Progress.phase "intext:methods" @@ fun () ->
  let cases = match cases with Some c -> c | None -> default_cases () in
  List.concat_map
    (fun case ->
      let { Case.graph; platform; model; _ } = Case.instantiate case in
      let rng = Prng.Xoshiro.create (Int64.add case.Case.seed 0xC0FFEEL) in
      let sched = Sched.Random_sched.generate ~rng ~graph ~n_procs:case.Case.n_procs in
      let mc_count = Scale.realizations scale 100000 in
      let emp =
        Makespan.Montecarlo.run ?domains ~rng ~count:mc_count sched platform model
      in
      let engine = Makespan.Engine.create ~graph ~platform ~model in
      List.map
        (fun m ->
          let d =
            Makespan.Engine.eval ~backend:(Makespan.Engine.backend_of_method m) engine
              sched
          in
          {
            case_id = case.Case.id;
            method_name = Makespan.Eval.method_name m;
            ks = Stats.Distance.ks (Analytic d) (Sampled emp);
            cm = Stats.Distance.cm_area (Analytic d) (Sampled emp);
          })
        Makespan.Eval.all_methods)
    cases

let render_methods rows =
  Render.table
    ~title:
      "In-text (§V) — analytic evaluation methods vs Monte Carlo\n\
       (paper shape: classical, Dodin and Spelde all close to the realizations)"
    ~headers:[ "case"; "method"; "KS"; "CM" ]
    ~rows:
      (List.map
         (fun r -> [ r.case_id; r.method_name; Render.cell_sci r.ks; Render.cell_sci r.cm ])
         rows)
