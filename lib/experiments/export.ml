let series_csv ~headers ~rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," headers);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      if List.length row <> List.length headers then
        invalid_arg "Export.series_csv: ragged row";
      Buffer.add_string buf (String.concat "," (List.map (Printf.sprintf "%.9g") row));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

(* mkdir -p: creates missing parents and tolerates a concurrent creator
   (two campaigns sharing a checkpoint dir must not crash on EEXIST). *)
let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    match Unix.mkdir dir 0o755 with
    | () -> ()
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Atomic publication: the content lands under a process-unique temp
   name, is fsynced, and only then renamed over [dir/name]. A crash at
   any point leaves either the old file intact or the new one complete —
   never a truncated CSV a resumed campaign could mistake for a valid
   checkpoint. The "campaign.write" probe sits between the buffered
   write and the fsync, i.e. exactly where a real crash would bite. *)
let write_file ~dir ~name content =
  mkdir_p dir;
  let path = Filename.concat dir name in
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (try
     let oc = Unix.out_channel_of_descr fd in
     output_string oc content;
     flush oc;
     Fault.cut "campaign.write";
     Unix.fsync fd;
     close_out oc
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  (* durability of the rename itself; best-effort, not all systems
     support fsync on a directory fd *)
  (try
     let dfd = Unix.openfile dir [ Unix.O_RDONLY ] 0 in
     Fun.protect
       ~finally:(fun () -> try Unix.close dfd with Unix.Unix_error _ -> ())
       (fun () -> Unix.fsync dfd)
   with Unix.Unix_error _ | Sys_error _ -> ());
  path

let fig1_csv (t : Fig1.t) =
  series_csv ~headers:[ "n_tasks"; "ks"; "cm" ]
    ~rows:(List.map (fun p -> [ float_of_int p.Fig1.n_tasks; p.Fig1.ks; p.Fig1.cm ]) t)

let fig2_csv (t : Fig2.t) =
  series_csv ~headers:[ "makespan"; "calculated"; "experimental" ]
    ~rows:
      (List.init (Array.length t.Fig2.xs) (fun i ->
           [ t.Fig2.xs.(i); t.Fig2.calculated.(i); t.Fig2.experimental.(i) ]))

let fig_corr_csv (t : Fig_corr.t) =
  let labels = Metrics.Robustness.labels in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Stats.Matrix_render.to_csv ~labels t.Fig_corr.matrix);
  List.iter
    (fun (name, row) ->
      Buffer.add_string buf
        (Printf.sprintf "# %s,%s\n" name
           (String.concat ","
              (List.map (Printf.sprintf "%.9g") (Array.to_list row)))))
    (Runner.heuristic_rows t.Fig_corr.result);
  Buffer.contents buf

let schedules_csv (result : Runner.result) =
  let labels = Metrics.Robustness.labels in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf
    ("source," ^ String.concat "," (Array.to_list labels) ^ "\n");
  Array.iteri
    (fun i src ->
      let name =
        match src with
        | Runner.Random k -> Printf.sprintf "random-%d" k
        | Runner.Heuristic h -> h
      in
      Buffer.add_string buf name;
      Array.iter
        (fun v -> Buffer.add_string buf (Printf.sprintf ",%.9g" v))
        result.Runner.rows.(i);
      Buffer.add_char buf '\n')
    result.Runner.sources;
  Buffer.contents buf

let fig6_csv (t : Fig6.t) =
  let labels = Metrics.Robustness.labels in
  "# mean\n"
  ^ Stats.Matrix_render.to_csv ~labels t.Fig6.mean
  ^ "# std\n"
  ^ Stats.Matrix_render.to_csv ~labels t.Fig6.std

let fig7_csv (t : Fig7.t) =
  series_csv ~headers:[ "x"; "special"; "normal" ]
    ~rows:
      (List.init (Array.length t.Fig7.xs) (fun i ->
           [ t.Fig7.xs.(i); t.Fig7.special.(i); t.Fig7.normal.(i) ]))

let fig8_csv (t : Fig8.t) =
  series_csv ~headers:[ "n_sums"; "ks"; "cm"; "skewness"; "kurtosis_excess" ]
    ~rows:
      (List.map
         (fun p ->
           [ float_of_int p.Fig8.n_sums; p.Fig8.ks; p.Fig8.cm; p.Fig8.skewness;
             p.Fig8.kurtosis_excess ])
         t)

let fig9_csv (t : Fig9.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "schedule,expected_makespan,makespan_std,total_slack\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%.9g,%.9g,%.9g\n" r.Fig9.name r.Fig9.expected_makespan
           r.Fig9.makespan_std r.Fig9.total_slack))
    t;
  Buffer.contents buf

let gnuplot_fig1 ~data =
  Printf.sprintf
    {|set datafile separator ','
set logscale xy
set xlabel 'graph size (tasks)'
set ylabel 'KS'
set y2label 'CM'
set y2tics
set logscale y2
set key left top
plot '%s' skip 1 using 1:2 with linespoints title 'KS', \
     '%s' skip 1 using 1:3 axes x1y2 with linespoints title 'CM'
|}
    data data

let gnuplot_density ~data ~title =
  Printf.sprintf
    {|set datafile separator ','
set title '%s'
set xlabel 'value'
set ylabel 'density'
plot '%s' skip 1 using 1:2 with lines title columnheader(2), \
     '%s' skip 1 using 1:3 with lines title columnheader(3)
|}
    title data data

let gnuplot_fig8 ~data =
  Printf.sprintf
    {|set datafile separator ','
set logscale y
set xlabel 'number of variables in the sum'
set ylabel 'KS'
set y2label 'CM'
set y2tics
set logscale y2
plot '%s' skip 1 using 1:2 with linespoints title 'KS', \
     '%s' skip 1 using 1:3 axes x1y2 with linespoints title 'CM'
|}
    data data
