let src = Logs.Src.create "repro.experiments" ~doc:"experiment sweep progress"

module Log = (val Logs.src_log src : Logs.LOG)

let warn fmt = Format.kasprintf (fun s -> Log.warn (fun m -> m "%s" s)) fmt
let info fmt = Format.kasprintf (fun s -> Log.info (fun m -> m "%s" s)) fmt
let debug fmt = Format.kasprintf (fun s -> Log.debug (fun m -> m "%s" s)) fmt

let time fmt =
  Format.kasprintf
    (fun label f ->
      let t0 = Unix.gettimeofday () in
      let finish () = info "%s: %.3f s" label (Unix.gettimeofday () -. t0) in
      match f () with
      | v ->
        finish ();
        v
      | exception e ->
        finish ();
        raise e)
    fmt
