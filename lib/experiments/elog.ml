let src = Logs.Src.create "repro.experiments" ~doc:"experiment sweep progress"

module Log = (val Logs.src_log src : Logs.LOG)

let warn fmt = Format.kasprintf (fun s -> Log.warn (fun m -> m "%s" s)) fmt
let info fmt = Format.kasprintf (fun s -> Log.info (fun m -> m "%s" s)) fmt
let debug fmt = Format.kasprintf (fun s -> Log.debug (fun m -> m "%s" s)) fmt

let time fmt =
  Format.kasprintf
    (fun label f ->
      (* monotonic, shared with Obs.Span: durations survive NTP steps *)
      let t0 = Obs.Clock.now_s () in
      let finish () = info "%s: %.3f s" label (Obs.Clock.now_s () -. t0) in
      match f () with
      | v ->
        finish ();
        v
      | exception e ->
        finish ();
        raise e)
    fmt
