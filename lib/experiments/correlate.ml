let matrix ?(invert = true) ?(method_ = `Pearson) rows =
  if Array.length rows = 0 then invalid_arg "Correlate.matrix: no schedules";
  let data = if invert then Metrics.Inversion.apply_all rows else rows in
  let k = Metrics.Robustness.n_metrics in
  let cols = Array.init k (fun j -> Array.map (fun row -> row.(j)) data) in
  (* A degenerate column — constant (e.g. all-equal slack on a 1-proc
     smoke case), containing a nan, or from a single schedule — carries
     no correlation signal. Its off-diagonal cells are explicitly nan
     (the diagonal stays 1), so downstream {!mean_std} aggregation skips
     them instead of a rounding-noise ±1 polluting a Fig. 6 cell. *)
  let degenerate =
    Array.map
      (fun col ->
        Array.length col < 2
        || Array.for_all (fun v -> v = col.(0)) col
        || Array.exists Float.is_nan col)
      cols
  in
  let m = Array.make_matrix k k 1. in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      let r =
        if degenerate.(i) || degenerate.(j) then Float.nan
        else
          match method_ with
          | `Pearson -> Stats.Correlation.pearson cols.(i) cols.(j)
          | `Spearman -> Stats.Correlation.spearman cols.(i) cols.(j)
      in
      m.(i).(j) <- r;
      m.(j).(i) <- r
    done
  done;
  m

let of_result result = matrix (Runner.random_rows result)

let mean_std matrices =
  match matrices with
  | [] -> invalid_arg "Correlate.mean_std: no matrices"
  | first :: _ ->
    let k = Array.length first in
    let mean = Array.make_matrix k k 0. in
    let std = Array.make_matrix k k 0. in
    for i = 0 to k - 1 do
      for j = 0 to k - 1 do
        let values =
          List.filter_map
            (fun m -> if Float.is_nan m.(i).(j) then None else Some m.(i).(j))
            matrices
        in
        match values with
        | [] ->
          mean.(i).(j) <- Float.nan;
          std.(i).(j) <- Float.nan
        | vs ->
          let a = Array.of_list vs in
          let m = Stats.Descriptive.mean a in
          mean.(i).(j) <- m;
          std.(i).(j) <- sqrt (Stats.Descriptive.population_variance a)
      done
    done;
    (mean, std)
