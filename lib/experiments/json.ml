type t =
  | Obj of (string * t) list
  | Arr of t list
  | Str of string
  | Num of string
  | Bool of bool
  | Null

type error = {
  offset : int;
  reason : string;
}

let error_to_string e = Printf.sprintf "byte %d: %s" e.offset e.reason

exception Fail of error

let fail offset reason = raise (Fail { offset; reason })

let parse ?(max_bytes = 8 * 1024 * 1024) ?(max_depth = 64) ?(max_nodes = 1_000_000) s =
  let n = String.length s in
  let pos = ref 0 in
  let nodes = ref 0 in
  let peek () = if !pos < n then s.[!pos] else fail !pos "unexpected end of input" in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n then
      match s.[!pos] with
      | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
      | _ -> ()
  in
  let expect c =
    if peek () <> c then fail !pos (Printf.sprintf "expected %C" c) else advance ()
  in
  let node () =
    incr nodes;
    if !nodes > max_nodes then fail !pos "too many nodes"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char buf '"'; advance ()
        | '\\' -> Buffer.add_char buf '\\'; advance ()
        | '/' -> Buffer.add_char buf '/'; advance ()
        | 'n' -> Buffer.add_char buf '\n'; advance ()
        | 'r' -> Buffer.add_char buf '\r'; advance ()
        | 't' -> Buffer.add_char buf '\t'; advance ()
        | 'b' -> Buffer.add_char buf '\b'; advance ()
        | 'f' -> Buffer.add_char buf '\012'; advance ()
        | 'u' ->
          advance ();
          if !pos + 4 > n then fail !pos "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some c -> c
            | None -> fail !pos "malformed \\u escape"
          in
          pos := !pos + 4;
          (* escapes we emit are all < 0x80; decode the rest as '?' *)
          Buffer.add_char buf (if code < 0x80 then Char.chr code else '?')
        | _ -> fail !pos "unknown escape");
        go ()
      | c when Char.code c < 0x20 -> fail !pos "raw control character in string"
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value depth =
    if depth > max_depth then fail !pos "nesting too deep";
    node ();
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          if peek () <> '"' then fail !pos "expected object key";
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            members ((k, v) :: acc)
          | '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail !pos "expected ',' or '}'"
        in
        members []
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            elements (v :: acc)
          | ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail !pos "expected ',' or ']'"
        in
        elements []
      end
    | '"' -> Str (parse_string ())
    | 't' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "true" then begin
        pos := !pos + 4;
        Bool true
      end
      else fail !pos "malformed literal"
    | 'f' ->
      if !pos + 5 <= n && String.sub s !pos 5 = "false" then begin
        pos := !pos + 5;
        Bool false
      end
      else fail !pos "malformed literal"
    | 'n' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "null" then begin
        pos := !pos + 4;
        Null
      end
      else fail !pos "malformed literal"
    | '-' | '0' .. '9' ->
      let start = !pos in
      let num_char c =
        match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
      in
      while !pos < n && num_char s.[!pos] do
        advance ()
      done;
      let raw = String.sub s start (!pos - start) in
      (* a raw literal must at least convert as a float; rejects "-",
         "1e", "1.2.3" and friends *)
      if float_of_string_opt raw = None then fail start "malformed number";
      Num raw
    | _ -> fail !pos "unexpected character"
  in
  if n > max_bytes then Error { offset = 0; reason = "input too large" }
  else
    match
      let v = parse_value 0 in
      skip_ws ();
      if !pos <> n then fail !pos "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Fail e -> Error e

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let mem k = function Obj fields -> List.assoc_opt k fields | _ -> None
let str = function Str s -> Some s | _ -> None
let num = function Num raw -> Some raw | _ -> None
let bool_ = function Bool b -> Some b | _ -> None
let list_ = function Arr l -> Some l | _ -> None
let to_int = function Num raw -> int_of_string_opt raw | _ -> None

let to_int64 = function
  | Num raw | Str raw -> Int64.of_string_opt raw
  | _ -> None

let to_float = function Num raw -> float_of_string_opt raw | _ -> None

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_lit v = if Float.is_finite v then Printf.sprintf "%.17g" v else "null"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num raw -> Buffer.add_string buf raw
  | Str s -> escape_into buf s
  | Arr l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_into buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf
