type point = {
  n_tasks : int;
  ks : float;
  cm : float;
}

type t = point list

let evaluate_one ?domains ~rng ~mc_count graph n_procs model =
  let n_tasks = Dag.Graph.n_tasks graph in
  let platform_rng = Prng.Xoshiro.split rng in
  let platform =
    Platform.Gen.cvb ~rng:platform_rng ~n_tasks ~n_procs ~mu_task:20. ~v_task:0.5
      ~v_mach:0.5 ()
  in
  let sched = Sched.Random_sched.generate ~rng ~graph ~n_procs in
  let engine = Makespan.Engine.create ~graph ~platform ~model in
  let dist = Makespan.Engine.eval engine sched in
  let emp = Makespan.Montecarlo.run ?domains ~rng ~count:mc_count sched platform model in
  ( Stats.Distance.ks (Analytic dist) (Sampled emp),
    Stats.Distance.cm_area (Analytic dist) (Sampled emp) )

let run ?domains ?(scale = Scale.of_env ()) ?(seed = 11L) () =
  Obs.Progress.phase "fig1" @@ fun () ->
  let rng = Prng.Xoshiro.create seed in
  let model = Workloads.Stochastify.make ~ul:1.1 () in
  let sizes = [ 10; 30; 100 ] @ (if scale.Scale.include_n1000 then [ 1000 ] else []) in
  List.map
    (fun n ->
      let reps = if n >= 1000 then 1 else 3 in
      let mc_count = Scale.realizations scale (if n >= 1000 then 20000 else 100000) in
      let n_procs = if n < 20 then 3 else if n < 100 then 8 else 16 in
      Elog.info "fig1: size %d (%d graphs, %d realizations each)" n reps mc_count;
      let ks_acc = ref 0. and cm_acc = ref 0. in
      for _ = 1 to reps do
        let max_out_degree = if n > 300 then Some 16 else None in
        let graph = Workloads.Random_dag.generate ~rng ~n ?max_out_degree () in
        let ks, cm = evaluate_one ?domains ~rng ~mc_count graph n_procs model in
        ks_acc := !ks_acc +. ks;
        cm_acc := !cm_acc +. cm
      done;
      { n_tasks = n; ks = !ks_acc /. float_of_int reps; cm = !cm_acc /. float_of_int reps })
    sizes

let render t =
  Render.table
    ~title:
      "Fig. 1 — precision of the independence assumption vs graph size (UL = 1.1)\n\
       (paper shape: KS and CM grow with graph size)"
    ~headers:[ "n_tasks"; "KS"; "CM" ]
    ~rows:
      (List.map
         (fun p -> [ string_of_int p.n_tasks; Render.cell_sci p.ks; Render.cell_sci p.cm ])
         t)
