(** Crash-safe, checkpointed experiment campaigns.

    A full-scale Fig. 6 sweep (24 cases × 10 000 schedules) is a
    multi-hour single-core run; a campaign persists each case's
    per-schedule dataset to [dir/<case-id>.csv] as it completes, so an
    interrupted run resumes where it left off and finished cases are
    never recomputed. The stored CSVs are exactly
    {!Export.schedules_csv}, i.e. also directly consumable by external
    plotting tools.

    Failure model (see DESIGN.md §9):
    - checkpoints and the [campaign.json] manifest are published
      atomically (temp + fsync + rename), so a crash or SIGKILL at any
      instant leaves no truncated file a resume could trust;
    - checkpoints are validated against the {!Manifest} provenance
      (scale, per-case seed, slack mode, wanted schedule count) — stale
      or foreign CSVs are recomputed with an {!Elog.warn}, never
      silently reused;
    - a case whose evaluation raises is retried with exponential backoff
      (transient errors only) and, on exhaustion, recorded as a
      structured {!failure}; the campaign completes every other case and
      {!render} reports the casualties;
    - SIGINT/SIGTERM request a {e cooperative} stop: the in-flight case
      finishes its checkpoint and manifest update, then {!Interrupted}
      is raised so the caller can exit nonzero; the next invocation
      resumes exactly. *)

type case_result = {
  case : Case.t;
  rows : float array array;  (** raw metric vectors, labels order *)
  sources : Runner.source array;
  from_checkpoint : bool;  (** loaded from disk rather than recomputed *)
}

type failure = {
  failed_case : Case.t;
  attempts : int;  (** evaluation attempts consumed (1 = no retry) *)
  error : string;  (** printed form of the last exception *)
}

type t = {
  dir : string;
  results : case_result list;  (** successful cases, campaign order *)
  failures : failure list;  (** cases abandoned after bounded retry *)
  mean : float array array;
      (** Fig. 6-style aggregate over the {e successful} cases; all-nan
          when every case failed *)
  std : float array array;
}

exception Interrupted
(** Raised (after checkpoint + manifest update, with the stop flag
    cleared) when {!request_stop} — or a SIGINT/SIGTERM arriving during
    {!run} — asked the campaign to wind down with cases still pending. *)

val request_stop : unit -> unit
(** Ask the (current or next) campaign to stop at the next case
    boundary: sets every active {!Stop} scope plus a pending flag that
    the next {!run} picks up, so tests can request the stop before the
    campaign starts and exercise the shutdown path deterministically. *)

val load_rows : string -> (Runner.source * float array) array
(** Parse a stored per-schedule CSV back into (source, metric-vector)
    pairs. Raises [Invalid_argument] on malformed files. *)

val run :
  ?domains:int ->
  ?pool:Parallel.Pool.t ->
  ?scale:Scale.t ->
  ?slack_mode:Sched.Slack.graph_mode ->
  ?attempts:int ->
  ?backoff:float ->
  ?schedulers:string list ->
  dir:string ->
  ?cases:Case.t list ->
  unit ->
  t
(** Run (or resume) a campaign over [cases] (default
    {!Case.paper_cases}). A case is recomputed when its checkpoint is
    missing, fails manifest provenance (different seed, scale or slack
    mode — or no manifest at all), or holds fewer random schedules than
    the requested scale. [?attempts] bounds evaluation tries per case
    (default 3); [?backoff] is the initial retry delay in seconds,
    doubled per retry (default 0.5; pass [0.] in tests).
    [?pool]/[?domains] select sweep workers as in {!Runner.run}; by
    default every case shares one persistent pool.

    [?schedulers] names the heuristic schedules swept next to the random
    ones — registry names, aliases, or [rank=...,select=...]
    compositions (default {!Runner.heuristics}). Unknown names raise
    [Invalid_argument] before any case runs; a checkpoint missing one of
    the requested schedulers is recomputed.

    While running, the campaign holds a {!Stop} scope, so SIGINT and
    SIGTERM request a cooperative stop without displacing any other
    active scope (an enclosing campaign, the service's drain handler);
    outside of every scope the previous signal behaviour is restored.
    May raise {!Interrupted}; everything completed up to that point is
    on disk. *)

val render : t -> string
(** The Fig. 6 matrix over successful cases, plus a failure report when
    any case was abandoned. *)
