(** Checkpointed experiment campaigns.

    A full-scale Fig. 6 sweep (24 cases × 10 000 schedules) is a
    multi-hour single-core run; a campaign persists each case's
    per-schedule dataset to [dir/<case-id>.csv] as it completes, so an
    interrupted run resumes where it left off and finished cases are
    never recomputed. The stored CSVs are exactly
    {!Export.schedules_csv}, i.e. also directly consumable by external
    plotting tools. *)

type case_result = {
  case : Case.t;
  rows : float array array;  (** raw metric vectors, labels order *)
  sources : Runner.source array;
  from_checkpoint : bool;  (** loaded from disk rather than recomputed *)
}

type t = {
  dir : string;
  results : case_result list;
  mean : float array array;  (** Fig. 6-style aggregate over the campaign *)
  std : float array array;
}

val load_rows : string -> (Runner.source * float array) array
(** Parse a stored per-schedule CSV back into (source, metric-vector)
    pairs. Raises [Invalid_argument] on malformed files. *)

val run :
  ?domains:int ->
  ?pool:Parallel.Pool.t ->
  ?scale:Scale.t ->
  ?slack_mode:Sched.Slack.graph_mode ->
  dir:string ->
  ?cases:Case.t list ->
  unit ->
  t
(** Run (or resume) a campaign over [cases] (default
    {!Case.paper_cases}). A case is recomputed when its checkpoint is
    missing or holds fewer random schedules than the requested scale
    (so upgrading [smoke] checkpoints to a [small] run redoes them).
    [?pool]/[?domains] select sweep workers as in {!Runner.run}; by
    default every case shares one persistent pool. *)

val render : t -> string
