type source =
  | Random of int
  | Heuristic of string

type result = {
  instance : Case.instance;
  delta : float;
  gamma : float;
  sources : source array;
  rows : float array array;
}

(* The paper's defaults, resolved through the scheduler registry. Kept
   to exactly these three so campaign outputs stay stable; extra
   schedulers come in via [?heuristics]. *)
let default_heuristic_names = [ "HEFT"; "BIL"; "Hyb.BMCT" ]

let scheduler name =
  match Sched.Registry.parse name with
  | Ok e -> (e.Sched.Registry.name, e.Sched.Registry.run)
  | Error msg -> invalid_arg ("Runner.scheduler: " ^ msg)

let heuristics = List.map scheduler default_heuristic_names

let run ?domains ?pool ?(scale = Scale.of_env ()) ?slack_mode ?count
    ?(heuristics = heuristics) case =
  (* fault-injection boundary: a campaign must survive a case whose
     evaluation raises (isolation + bounded retry live in Campaign) *)
  Fault.cut "runner.eval";
  let instance = Case.instantiate case in
  let { Case.graph; platform; model; _ } = instance in
  let rng = Prng.Xoshiro.create (Int64.add case.Case.seed 0x5EEDL) in
  let count =
    match count with
    | Some c ->
      if c < 0 then invalid_arg "Runner.run: count must be >= 0";
      c
    | None -> Scale.schedules scale case.Case.paper_schedules
  in
  let random_scheds =
    Array.of_list
      (Sched.Random_sched.generate_many ~rng ~graph ~n_procs:case.Case.n_procs ~count)
  in
  let heuristic_scheds =
    List.map (fun (name, f) -> (name, f graph platform)) heuristics
  in
  let engine = Makespan.Engine.create ~graph ~platform ~model in
  (* calibrate the probabilistic-metric bounds on a pilot batch so that A
     and R spread over (0,1) for this case's weight scale; with no random
     schedules the pilot falls back to the heuristic schedules. Either
     way the pilot schedules are exactly the first entries of the sweep
     order below, so each full evaluation is kept and its metric row
     reused — the pilot used to be a second, thrown-away evaluation of
     the same 20 schedules. *)
  let pilot_scheds =
    match Int.min 20 count with
    | 0 -> List.map snd heuristic_scheds
    | pilot_size -> List.init pilot_size (fun i -> random_scheds.(i))
  in
  let pilot_evals =
    Array.of_list
      (List.map (fun sched -> Makespan.Engine.analyze ?slack_mode engine sched) pilot_scheds)
  in
  let pilot =
    Array.to_list
      (Array.map
         (fun e ->
           let d = e.Makespan.Engine.makespan in
           (Distribution.Dist.mean d, Distribution.Dist.std d))
         pilot_evals)
  in
  let delta, gamma = Metrics.Robustness.calibrate_bounds pilot in
  Elog.debug "case %s: calibrated bounds on %d pilot schedules (δ=%.3g, γ=%.6g)"
    case.Case.id (List.length pilot) delta gamma;
  let all_scheds =
    Array.append random_scheds (Array.of_list (List.map snd heuristic_scheds))
  in
  let sources =
    Array.init (Array.length all_scheds) (fun i ->
        if i < count then Random i
        else Heuristic (fst (List.nth heuristic_scheds (i - count))))
  in
  Elog.info "case %s: evaluating %d schedules (δ=%.3g, γ=%.6g)" case.Case.id
    (Array.length all_scheds) delta gamma;
  let progress =
    Obs.Progress.create ~total:(Array.length all_scheds) ("case " ^ case.Case.id)
  in
  let rows =
    Obs.Span.with_ ~name:"runner.sweep" (fun () ->
        Parallel.Par_array.init ?domains ?pool ~chunk_size:16 (Array.length all_scheds)
          (fun i ->
            let row =
              Metrics.Robustness.to_array
                (if i < Array.length pilot_evals then
                   (* same delta/gamma application {!Robustness.of_engine}
                      would perform, minus the duplicate evaluation *)
                   let { Makespan.Engine.makespan; slack } = pilot_evals.(i) in
                   Metrics.Robustness.compute ~delta ~gamma ~makespan_dist:makespan
                     ~slack ()
                 else
                   Metrics.Robustness.of_engine ~delta ~gamma ?slack_mode engine
                     all_scheds.(i))
            in
            Obs.Progress.tick progress;
            row))
  in
  Obs.Progress.finish progress;
  let s = Makespan.Engine.stats engine in
  Elog.debug "case %s: engine task %d/%d hit/miss, comm %d/%d hit/miss, %d evals"
    case.Case.id s.Makespan.Engine.task_hits s.Makespan.Engine.task_misses
    s.Makespan.Engine.comm_hits s.Makespan.Engine.comm_misses s.Makespan.Engine.evals;
  Elog.info "case %s: done" case.Case.id;
  { instance; delta; gamma; sources; rows }

let heuristic_rows result =
  let out = ref [] in
  Array.iteri
    (fun i src ->
      match src with
      | Heuristic name -> out := (name, result.rows.(i)) :: !out
      | Random _ -> ())
    result.sources;
  List.rev !out

let random_rows_of ~sources ~rows =
  let n =
    Array.fold_left
      (fun acc s -> match s with Random _ -> acc + 1 | Heuristic _ -> acc)
      0 sources
  in
  let out = Array.make n [||] in
  let j = ref 0 in
  Array.iteri
    (fun i src ->
      match src with
      | Random _ ->
        out.(!j) <- rows.(i);
        incr j
      | Heuristic _ -> ())
    sources;
  out

let random_rows result = random_rows_of ~sources:result.sources ~rows:result.rows
