(** Campaign provenance manifest ([campaign.json]).

    A checkpoint CSV is only bitwise-reusable if it was produced under
    the same scale, seed and slack mode — a file from a foreign run that
    merely has enough rows must be recomputed, not silently trusted.
    The manifest records that provenance plus per-case status, is
    rewritten atomically (via {!Export.write_file}) after every case,
    and is what {!Campaign.run} validates checkpoints against and what a
    resumed invocation picks up after a crash or signal.

    Schema (JSON, version 1):
    {v
    { "version": 1,
      "scale": "small",
      "slack_mode": "disjunctive",
      "cases": [
        { "id": "cholesky-n10-p3-ul1.1-s1", "seed": "1",
          "schedules": 1000, "status": "done", "rows": 1003,
          "attempts": 1 },
        { "id": "...", "seed": "1", "schedules": 1000,
          "status": "failed", "attempts": 3, "error": "..." } ] }
    v}
    [schedules] is the random-schedule count the scale demanded when the
    case ran; [seed] is decimal-in-a-string so 64-bit seeds survive the
    float-free parser. *)

type status =
  | Done of { rows : int; attempts : int }
      (** checkpoint CSV on disk with [rows] data rows *)
  | Failed of { attempts : int; error : string }
      (** every attempt raised; [error] is the last exception *)

type entry = {
  id : string;  (** {!Case.t} id, also the CSV basename *)
  seed : int64;
  schedules : int;  (** wanted random schedules when produced *)
  status : status;
}

type t = {
  scale : string;  (** {!Scale.t} name the campaign ran at *)
  slack_mode : string;  (** {!slack_mode_name} of the campaign *)
  entries : entry list;
}

val version : int
val file_name : string

val slack_mode_name : Sched.Slack.graph_mode option -> string
(** Canonical name: ["disjunctive"] (also the [None] default) or
    ["precedence"]. *)

val find : t -> string -> entry option

val save : dir:string -> t -> unit
(** Atomically (re)write [dir/campaign.json]. *)

val load : dir:string -> t option
(** [None] when the file is absent, unparseable or of a foreign
    version — callers treat all three as "no provenance: recompute". *)
