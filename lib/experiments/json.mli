(** Hand-rolled JSON codec shared by every wire format in the repo
    ([campaign.json] manifests, the {!Service} protocol, telemetry
    reports) — no JSON dependency, per DESIGN §10.

    The parser is {e strictly bounded}: input size, nesting depth and
    node count are all capped, and every failure is a typed {!error}
    result — it never raises on untrusted bytes, which is what lets the
    evaluation service feed it network input directly. Numbers are kept
    as raw literals ({!Num}) and converted at the use site, so 64-bit
    seeds survive without a float round-trip. *)

type t =
  | Obj of (string * t) list
  | Arr of t list
  | Str of string
  | Num of string  (** raw literal, converted at the use site *)
  | Bool of bool
  | Null

type error = {
  offset : int;  (** byte offset of the failure *)
  reason : string;
}

val error_to_string : error -> string

val parse :
  ?max_bytes:int -> ?max_depth:int -> ?max_nodes:int -> string -> (t, error) result
(** Parse one complete JSON document (trailing garbage is an error).
    Defaults: [max_bytes] 8 MiB, [max_depth] 64, [max_nodes] 1_000_000.
    Unicode escapes below 0x80 decode exactly; higher code points decode
    to ['?'] (the writers in this repo never emit them). *)

(** {1 Accessors}

    All return [None] on a shape mismatch, so decoding code reads as a
    chain of [let*]s over [Option]. *)

val mem : string -> t -> t option
(** Field of an {!Obj} (first occurrence). *)

val str : t -> string option
val num : t -> string option
val bool_ : t -> bool option
val list_ : t -> t list option
val to_int : t -> int option
val to_int64 : t -> int64 option
(** Accepts both a raw number and the decimal-in-a-string convention
    used for 64-bit seeds. *)

val to_float : t -> float option

(** {1 Writer} *)

val escape_into : Buffer.t -> string -> unit
(** Append the JSON string literal (with quotes) for [s]. *)

val float_lit : float -> string
(** Round-trip-exact literal ([%.17g]); non-finite values become
    [null]. *)

val write : Buffer.t -> t -> unit
val to_string : t -> string
(** Compact single-line rendering; object fields keep their order. *)
