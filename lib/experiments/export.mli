(** CSV (and gnuplot) export of experiment results, so figures can be
    re-plotted outside the terminal. [`repro --out DIR`] writes these
    next to the rendered text. *)

val series_csv : headers:string list -> rows:float list list -> string
(** Generic numeric CSV with a header line. *)

val mkdir_p : string -> unit
(** Create a directory and any missing parents; an already-existing
    directory (including one created concurrently) is not an error. *)

val write_file : dir:string -> name:string -> string -> string
(** [write_file ~dir ~name content] creates [dir] (and parents) if
    needed, then {e atomically} publishes [dir/name]: the content is
    written to a process-unique temp file, fsynced and renamed into
    place, so a crash or kill at any instant leaves either the previous
    file intact or the new one complete — never a truncation. Returns
    the path. Carries the ["campaign.write"] {!Fault} probe between
    write and fsync. *)

val fig1_csv : Fig1.t -> string
val fig2_csv : Fig2.t -> string

val fig_corr_csv : Fig_corr.t -> string
(** The correlation matrix (CSV), followed by one commented line per
    heuristic with its raw metric vector. *)

val schedules_csv : Runner.result -> string
(** The full per-schedule dataset of a run: one row per schedule (random
    and heuristic), raw metric values in {!Metrics.Robustness.labels}
    order plus a [source] column — the paper's scatter-matrix input. *)

val fig6_csv : Fig6.t -> string
(** Mean matrix then std matrix. *)

val fig7_csv : Fig7.t -> string
val fig8_csv : Fig8.t -> string
val fig9_csv : Fig9.t -> string

val gnuplot_fig1 : data:string -> string
(** A gnuplot script plotting the Fig. 1 series from the CSV at [data]
    (log-log, as in the paper). *)

val gnuplot_density : data:string -> title:string -> string
(** Script for the two-density figures (Figs. 2 and 7). *)

val gnuplot_fig8 : data:string -> string
