type scope = bool Atomic.t

(* The active scopes live in an immutable list behind an Atomic, so the
   signal handler can walk it without taking a lock (a handler runs at a
   safe point of whatever domain receives the signal; blocking on a
   mutex held by that same domain would deadlock). Install/restore of
   the real handlers is serialized by [install_lock], which the handler
   itself never touches. *)
let scopes : scope list Atomic.t = Atomic.make []

let request () = List.iter (fun f -> Atomic.set f true) (Atomic.get scopes)

let install_lock = Mutex.create ()

(* previous behaviours, saved while our handler is installed *)
let saved : (Sys.signal_behavior * Sys.signal_behavior) option ref = ref None

let handler = Sys.Signal_handle (fun _ -> request ())

let rec push f =
  let old = Atomic.get scopes in
  if not (Atomic.compare_and_set scopes old (f :: old)) then push f

let rec remove f =
  let old = Atomic.get scopes in
  let next = List.filter (fun g -> g != f) old in
  if not (Atomic.compare_and_set scopes old next) then remove f

let enter () =
  let f = Atomic.make false in
  Mutex.lock install_lock;
  push f;
  if !saved = None then
    saved :=
      Some (Sys.signal Sys.sigint handler, Sys.signal Sys.sigterm handler);
  Mutex.unlock install_lock;
  f

let exit_ f =
  Mutex.lock install_lock;
  remove f;
  (match (Atomic.get scopes, !saved) with
  | [], Some (prev_int, prev_term) ->
    Sys.set_signal Sys.sigint prev_int;
    Sys.set_signal Sys.sigterm prev_term;
    saved := None
  | _ -> ());
  Mutex.unlock install_lock

let with_scope f =
  let scope = enter () in
  Fun.protect ~finally:(fun () -> exit_ scope) (fun () -> f scope)

let requested f = Atomic.get f
let clear f = Atomic.set f false
let active () = List.length (Atomic.get scopes)
