type status =
  | Done of { rows : int; attempts : int }
  | Failed of { attempts : int; error : string }

type entry = {
  id : string;
  seed : int64;
  schedules : int;
  status : status;
}

type t = {
  scale : string;
  slack_mode : string;
  entries : entry list;
}

let version = 1
let file_name = "campaign.json"

let slack_mode_name = function
  | None | Some `Disjunctive -> "disjunctive"
  | Some `Precedence -> "precedence"

let find t id = List.find_opt (fun e -> e.id = id) t.entries

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let add_escaped = Json.escape_into

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "{\n  \"version\": %d,\n  \"scale\": " version);
  add_escaped buf t.scale;
  Buffer.add_string buf ",\n  \"slack_mode\": ";
  add_escaped buf t.slack_mode;
  Buffer.add_string buf ",\n  \"cases\": [";
  List.iteri
    (fun i e ->
      Buffer.add_string buf (if i = 0 then "\n    { " else ",\n    { ");
      Buffer.add_string buf "\"id\": ";
      add_escaped buf e.id;
      Buffer.add_string buf (Printf.sprintf ", \"seed\": \"%Ld\"" e.seed);
      Buffer.add_string buf (Printf.sprintf ", \"schedules\": %d" e.schedules);
      (match e.status with
      | Done { rows; attempts } ->
        Buffer.add_string buf
          (Printf.sprintf ", \"status\": \"done\", \"rows\": %d, \"attempts\": %d" rows
             attempts)
      | Failed { attempts; error } ->
        Buffer.add_string buf
          (Printf.sprintf ", \"status\": \"failed\", \"attempts\": %d, \"error\": "
             attempts);
        add_escaped buf error);
      Buffer.add_string buf " }")
    t.entries;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let save ~dir t = ignore (Export.write_file ~dir ~name:file_name (to_json t))

(* ------------------------------------------------------------------ *)
(* Reader: {!Json} (the shared bounded parser) plus schema checks.     *)
(* Any shape mismatch is a [None] — callers treat that as "no          *)
(* provenance: recompute".                                             *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Option.bind

let str_field k j = Option.bind (Json.mem k j) Json.str
let int_field k j = Option.bind (Json.mem k j) Json.to_int

let entry_of_json ej =
  let* id = str_field "id" ej in
  let* seed = Option.bind (Json.mem "seed" ej) Json.to_int64 in
  let* schedules = int_field "schedules" ej in
  let* status =
    match str_field "status" ej with
    | Some "done" ->
      let* rows = int_field "rows" ej in
      let* attempts = int_field "attempts" ej in
      Some (Done { rows; attempts })
    | Some "failed" ->
      let* attempts = int_field "attempts" ej in
      let* error = str_field "error" ej in
      Some (Failed { attempts; error })
    | _ -> None
  in
  Some { id; seed; schedules; status }

let of_json j =
  let* v = int_field "version" j in
  if v <> version then None
  else
    let* cases = Option.bind (Json.mem "cases" j) Json.list_ in
    let* entries =
      List.fold_right
        (fun ej acc ->
          let* acc = acc in
          let* e = entry_of_json ej in
          Some (e :: acc))
        cases (Some [])
    in
    let* scale = str_field "scale" j in
    let* slack_mode = str_field "slack_mode" j in
    Some { scale; slack_mode; entries }

let load ~dir =
  let path = Filename.concat dir file_name in
  if not (Sys.file_exists path) then None
  else
    let read () =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match read () with
    | exception (Sys_error _ | End_of_file) -> None
    | content -> (
      match Json.parse content with
      | Error _ -> None
      | Ok j -> of_json j)
