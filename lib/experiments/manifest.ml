type status =
  | Done of { rows : int; attempts : int }
  | Failed of { attempts : int; error : string }

type entry = {
  id : string;
  seed : int64;
  schedules : int;
  status : status;
}

type t = {
  scale : string;
  slack_mode : string;
  entries : entry list;
}

let version = 1
let file_name = "campaign.json"

let slack_mode_name = function
  | None | Some `Disjunctive -> "disjunctive"
  | Some `Precedence -> "precedence"

let find t id = List.find_opt (fun e -> e.id = id) t.entries

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "{\n  \"version\": %d,\n  \"scale\": " version);
  add_escaped buf t.scale;
  Buffer.add_string buf ",\n  \"slack_mode\": ";
  add_escaped buf t.slack_mode;
  Buffer.add_string buf ",\n  \"cases\": [";
  List.iteri
    (fun i e ->
      Buffer.add_string buf (if i = 0 then "\n    { " else ",\n    { ");
      Buffer.add_string buf "\"id\": ";
      add_escaped buf e.id;
      Buffer.add_string buf (Printf.sprintf ", \"seed\": \"%Ld\"" e.seed);
      Buffer.add_string buf (Printf.sprintf ", \"schedules\": %d" e.schedules);
      (match e.status with
      | Done { rows; attempts } ->
        Buffer.add_string buf
          (Printf.sprintf ", \"status\": \"done\", \"rows\": %d, \"attempts\": %d" rows
             attempts)
      | Failed { attempts; error } ->
        Buffer.add_string buf
          (Printf.sprintf ", \"status\": \"failed\", \"attempts\": %d, \"error\": "
             attempts);
        add_escaped buf error);
      Buffer.add_string buf " }")
    t.entries;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let save ~dir t = ignore (Export.write_file ~dir ~name:file_name (to_json t))

(* ------------------------------------------------------------------ *)
(* Minimal JSON parser (the subset the writer emits)                   *)
(* ------------------------------------------------------------------ *)

type json =
  | Jobj of (string * json) list
  | Jarr of json list
  | Jstr of string
  | Jnum of string (* raw literal, converted at the use site *)
  | Jbool of bool
  | Jnull

exception Parse_error

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else raise Parse_error in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n then
      match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
  in
  let expect c = if peek () <> c then raise Parse_error else advance () in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char buf '"'; advance ()
        | '\\' -> Buffer.add_char buf '\\'; advance ()
        | '/' -> Buffer.add_char buf '/'; advance ()
        | 'n' -> Buffer.add_char buf '\n'; advance ()
        | 'r' -> Buffer.add_char buf '\r'; advance ()
        | 't' -> Buffer.add_char buf '\t'; advance ()
        | 'b' -> Buffer.add_char buf '\b'; advance ()
        | 'f' -> Buffer.add_char buf '\012'; advance ()
        | 'u' ->
          advance ();
          if !pos + 4 > n then raise Parse_error;
          let hex = String.sub s !pos 4 in
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some c -> c
            | None -> raise Parse_error
          in
          pos := !pos + 4;
          (* escapes we emit are all < 0x80; decode the rest as '?' *)
          Buffer.add_char buf (if code < 0x80 then Char.chr code else '?')
        | _ -> raise Parse_error);
        go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin advance (); Jobj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); members ((k, v) :: acc)
          | '}' -> advance (); Jobj (List.rev ((k, v) :: acc))
          | _ -> raise Parse_error
        in
        members []
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin advance (); Jarr [] end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); elements (v :: acc)
          | ']' -> advance (); Jarr (List.rev (v :: acc))
          | _ -> raise Parse_error
        in
        elements []
      end
    | '"' -> Jstr (parse_string ())
    | 't' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "true" then begin
        pos := !pos + 4;
        Jbool true
      end
      else raise Parse_error
    | 'f' ->
      if !pos + 5 <= n && String.sub s !pos 5 = "false" then begin
        pos := !pos + 5;
        Jbool false
      end
      else raise Parse_error
    | 'n' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "null" then begin
        pos := !pos + 4;
        Jnull
      end
      else raise Parse_error
    | '-' | '0' .. '9' ->
      let start = !pos in
      let num_char c =
        match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
      in
      while !pos < n && num_char s.[!pos] do
        advance ()
      done;
      if !pos = start then raise Parse_error;
      Jnum (String.sub s start (!pos - start))
    | _ -> raise Parse_error
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise Parse_error;
  v

let mem k = function Jobj fields -> List.assoc_opt k fields | _ -> None

let str_field k j = match mem k j with Some (Jstr s) -> s | _ -> raise Parse_error

let int_field k j =
  match mem k j with
  | Some (Jnum raw) -> (
    match int_of_string_opt raw with Some i -> i | None -> raise Parse_error)
  | _ -> raise Parse_error

let of_json j =
  if int_field "version" j <> version then raise Parse_error;
  let entry_of_json ej =
    let id = str_field "id" ej in
    let seed =
      match Int64.of_string_opt (str_field "seed" ej) with
      | Some s -> s
      | None -> raise Parse_error
    in
    let schedules = int_field "schedules" ej in
    let status =
      match str_field "status" ej with
      | "done" -> Done { rows = int_field "rows" ej; attempts = int_field "attempts" ej }
      | "failed" ->
        Failed { attempts = int_field "attempts" ej; error = str_field "error" ej }
      | _ -> raise Parse_error
    in
    { id; seed; schedules; status }
  in
  let entries =
    match mem "cases" j with
    | Some (Jarr l) -> List.map entry_of_json l
    | _ -> raise Parse_error
  in
  { scale = str_field "scale" j; slack_mode = str_field "slack_mode" j; entries }

let load ~dir =
  let path = Filename.concat dir file_name in
  if not (Sys.file_exists path) then None
  else
    let read () =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match of_json (parse_json (read ())) with
    | m -> Some m
    | exception (Parse_error | Sys_error _ | End_of_file) -> None
