type case_result = {
  case : Case.t;
  rows : float array array;
  sources : Runner.source array;
  from_checkpoint : bool;
}

type failure = {
  failed_case : Case.t;
  attempts : int;
  error : string;
}

type t = {
  dir : string;
  results : case_result list;
  failures : failure list;
  mean : float array array;
  std : float array array;
}

exception Interrupted

(* Cooperative stop: handlers may only set flags (they run between
   allocations, anywhere), so the campaign loop polls at case boundaries
   — the in-flight case always finishes its checkpoint and manifest
   update before [Interrupted] is raised. Signal routing lives in the
   shared {!Stop} scopes so a campaign composes with other consumers of
   SIGINT/SIGTERM (nested campaigns, the evaluation service's drain
   handler) instead of clobbering their handlers; [pending] additionally
   lets tests request a stop before [run] has opened its scope. *)
let pending = Atomic.make false

let request_stop () =
  Atomic.set pending true;
  Stop.request ()

let parse_source s =
  if String.length s > 7 && String.sub s 0 7 = "random-" then
    match int_of_string_opt (String.sub s 7 (String.length s - 7)) with
    | Some k -> Runner.Random k
    | None -> invalid_arg "Campaign.load_rows: malformed source"
  else Runner.Heuristic s

let load_rows path =
  let ic = open_in path in
  let lines =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let acc = ref [] in
        (try
           while true do
             acc := input_line ic :: !acc
           done
         with End_of_file -> ());
        List.rev !acc)
  in
  match lines with
  | [] -> invalid_arg "Campaign.load_rows: empty file"
  | header :: rows ->
    let expected = "source," ^ String.concat "," (Array.to_list Metrics.Robustness.labels) in
    if header <> expected then invalid_arg "Campaign.load_rows: unexpected header";
    rows
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map (fun line ->
           match String.split_on_char ',' line with
           | source :: values when List.length values = Metrics.Robustness.n_metrics ->
             let row =
               Array.of_list
                 (List.map
                    (fun v ->
                      match float_of_string_opt v with
                      | Some f -> f
                      | None -> invalid_arg "Campaign.load_rows: malformed number")
                    values)
             in
             (parse_source source, row)
           | _ -> invalid_arg "Campaign.load_rows: malformed row")
    |> Array.of_list

let random_count sources =
  Array.fold_left
    (fun acc s -> match s with Runner.Random _ -> acc + 1 | _ -> acc)
    0 sources

(* Worth a retry: injected faults and I/O-shaped errors are treated as
   transient; programming errors (Invalid_argument, Assert_failure, …)
   fail the case immediately. *)
let transient = function
  | Fault.Injected _ | Unix.Unix_error _ | Sys_error _ -> true
  | _ -> false

let run ?domains ?pool ?(scale = Scale.of_env ()) ?slack_mode ?(attempts = 3)
    ?(backoff = 0.5) ?schedulers ~dir ?cases () =
  if attempts < 1 then invalid_arg "Campaign.run: attempts must be >= 1";
  if backoff < 0. then invalid_arg "Campaign.run: backoff must be >= 0";
  (* resolve scheduler names up front so a typo fails before any sweep *)
  let heuristics = Option.map (List.map Runner.scheduler) schedulers in
  let wanted_names = List.map fst (Option.value heuristics ~default:Runner.heuristics) in
  let cases = match cases with Some c -> c | None -> Case.paper_cases () in
  Export.mkdir_p dir;
  let slack_name = Manifest.slack_mode_name slack_mode in
  (* Provenance gate: only a manifest from the same scale and slack mode
     can vouch for checkpoints. Anything else (missing, unparseable,
     foreign) means every CSV present is recomputed, with a warning. *)
  let old_manifest =
    match Manifest.load ~dir with
    | Some m when m.Manifest.scale = scale.Scale.name && m.Manifest.slack_mode = slack_name
      -> Some m
    | Some m ->
      Elog.warn
        "campaign: manifest provenance mismatch (scale %s vs %s, slack %s vs %s); \
         invalidating all checkpoints in %s"
        m.Manifest.scale scale.Scale.name m.Manifest.slack_mode slack_name dir;
      None
    | None -> None
  in
  let entries : (string, Manifest.entry) Hashtbl.t = Hashtbl.create 31 in
  (match old_manifest with
  | Some m -> List.iter (fun e -> Hashtbl.replace entries e.Manifest.id e) m.Manifest.entries
  | None -> ());
  let save_manifest () =
    let listed =
      List.filter_map (fun c -> Hashtbl.find_opt entries c.Case.id) cases
    in
    Manifest.save ~dir
      { Manifest.scale = scale.Scale.name; slack_mode = slack_name; entries = listed }
  in
  let checkpoint_of case ~wanted ~path =
    match Hashtbl.find_opt entries case.Case.id with
    | Some { Manifest.seed; schedules; status = Manifest.Done _; _ }
      when seed = case.Case.seed && schedules = wanted && Sys.file_exists path -> (
      let covers pairs =
        List.for_all
          (fun n ->
            Array.exists
              (function Runner.Heuristic h, _ -> h = n | _ -> false)
              pairs)
          wanted_names
      in
      match load_rows path with
      | pairs when random_count (Array.map fst pairs) >= wanted && covers pairs ->
        Some pairs
      | _ ->
        Elog.warn
          "campaign: %s checkpoint has too few rows or misses a scheduler; recomputing"
          case.Case.id;
        None
      | exception Invalid_argument msg ->
        Elog.warn "campaign: %s checkpoint rejected (%s); recomputing" case.Case.id msg;
        None)
    | Some { Manifest.status = Manifest.Failed _; _ } -> None
    | Some _ ->
      if Sys.file_exists path then
        Elog.warn
          "campaign: %s checkpoint provenance mismatch (seed or scale changed); \
           recomputing"
          case.Case.id;
      None
    | None ->
      if Sys.file_exists path then
        Elog.warn "campaign: %s.csv present but not in the manifest; recomputing"
          case.Case.id;
      None
  in
  let progress = Obs.Progress.create ~total:(List.length cases) "campaign" in
  let results = ref [] and failures = ref [] in
  let n_cases = List.length cases in
  Stop.with_scope (fun scope ->
      let stop_requested () = Atomic.get pending || Stop.requested scope in
      let consume_stop () =
        Atomic.set pending false;
        Stop.clear scope
      in
      Obs.Progress.phase "campaign" (fun () ->
          List.iteri
            (fun idx case ->
              let path = Filename.concat dir (case.Case.id ^ ".csv") in
              let wanted = Scale.schedules scale case.Case.paper_schedules in
              (match checkpoint_of case ~wanted ~path with
              | Some pairs ->
                Elog.info "campaign: %s loaded from checkpoint (%d rows)" case.Case.id
                  (Array.length pairs);
                results :=
                  {
                    case;
                    rows = Array.map snd pairs;
                    sources = Array.map fst pairs;
                    from_checkpoint = true;
                  }
                  :: !results
              | None ->
                Elog.debug "campaign: %s has no usable checkpoint, sweeping" case.Case.id;
                (* evaluation and checkpoint write retry as one unit: a
                   crash-during-write recomputes, the old file survives *)
                let rec attempt k =
                  match
                    let r = Runner.run ?domains ?pool ~scale ?slack_mode ?heuristics case in
                    ignore
                      (Export.write_file ~dir ~name:(case.Case.id ^ ".csv")
                         (Export.schedules_csv r));
                    r
                  with
                  | r -> Ok (r, k)
                  | exception exn ->
                    let msg = Printexc.to_string exn in
                    if k < attempts && transient exn then begin
                      let delay = backoff *. (2. ** float_of_int (k - 1)) in
                      Elog.warn "campaign: %s attempt %d/%d failed (%s); retrying in %.2gs"
                        case.Case.id k attempts msg delay;
                      if delay > 0. then Unix.sleepf delay;
                      attempt (k + 1)
                    end
                    else Error (k, msg)
                in
                (match attempt 1 with
                | Ok (r, k) ->
                  Hashtbl.replace entries case.Case.id
                    {
                      Manifest.id = case.Case.id;
                      seed = case.Case.seed;
                      schedules = wanted;
                      status =
                        Manifest.Done { rows = Array.length r.Runner.rows; attempts = k };
                    };
                  save_manifest ();
                  results :=
                    {
                      case;
                      rows = r.Runner.rows;
                      sources = r.Runner.sources;
                      from_checkpoint = false;
                    }
                    :: !results
                | Error (k, msg) ->
                  Elog.warn "campaign: %s FAILED after %d attempt(s): %s" case.Case.id k
                    msg;
                  Hashtbl.replace entries case.Case.id
                    {
                      Manifest.id = case.Case.id;
                      seed = case.Case.seed;
                      schedules = wanted;
                      status = Manifest.Failed { attempts = k; error = msg };
                    };
                  save_manifest ();
                  failures := { failed_case = case; attempts = k; error = msg }
                              :: !failures));
              Obs.Progress.tick progress;
              if stop_requested () && idx < n_cases - 1 then begin
                consume_stop ();
                save_manifest ();
                Elog.warn
                  "campaign: stop requested; %d/%d cases done, manifest saved — rerun to \
                   resume"
                  (idx + 1) n_cases;
                raise Interrupted
              end)
            cases);
      consume_stop ());
  Obs.Progress.finish progress;
  save_manifest ();
  let results = List.rev !results and failures = List.rev !failures in
  let matrices =
    List.map
      (fun r -> Correlate.matrix (Runner.random_rows_of ~sources:r.sources ~rows:r.rows))
      results
  in
  let mean, std =
    match matrices with
    | [] ->
      let k = Metrics.Robustness.n_metrics in
      (Array.make_matrix k k Float.nan, Array.make_matrix k k Float.nan)
    | ms -> Correlate.mean_std ms
  in
  { dir; results; failures; mean; std }

let render t =
  let loaded = List.length (List.filter (fun r -> r.from_checkpoint) t.results) in
  let failure_report =
    match t.failures with
    | [] -> ""
    | fs ->
      Printf.sprintf "\n%d case(s) FAILED (results above exclude them):\n%s"
        (List.length fs)
        (String.concat ""
           (List.map
              (fun f ->
                Printf.sprintf "  %s: %d attempt(s): %s\n" f.failed_case.Case.id
                  f.attempts f.error)
              fs))
  in
  Printf.sprintf
    "Campaign over %d cases in %s (%d loaded from checkpoints%s)\n\
     Pearson coefficients (upper: mean, lower: std dev):\n\n%s%s"
    (List.length t.results) t.dir loaded
    (match t.failures with
    | [] -> ""
    | fs -> Printf.sprintf ", %d failed" (List.length fs))
    (Stats.Matrix_render.render_mean_std ~labels:Metrics.Robustness.labels t.mean t.std)
    failure_report
