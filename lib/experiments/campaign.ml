type case_result = {
  case : Case.t;
  rows : float array array;
  sources : Runner.source array;
  from_checkpoint : bool;
}

type t = {
  dir : string;
  results : case_result list;
  mean : float array array;
  std : float array array;
}

let parse_source s =
  if String.length s > 7 && String.sub s 0 7 = "random-" then
    match int_of_string_opt (String.sub s 7 (String.length s - 7)) with
    | Some k -> Runner.Random k
    | None -> invalid_arg "Campaign.load_rows: malformed source"
  else Runner.Heuristic s

let load_rows path =
  let ic = open_in path in
  let lines =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let acc = ref [] in
        (try
           while true do
             acc := input_line ic :: !acc
           done
         with End_of_file -> ());
        List.rev !acc)
  in
  match lines with
  | [] -> invalid_arg "Campaign.load_rows: empty file"
  | header :: rows ->
    let expected = "source," ^ String.concat "," (Array.to_list Metrics.Robustness.labels) in
    if header <> expected then invalid_arg "Campaign.load_rows: unexpected header";
    rows
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map (fun line ->
           match String.split_on_char ',' line with
           | source :: values when List.length values = Metrics.Robustness.n_metrics ->
             let row =
               Array.of_list
                 (List.map
                    (fun v ->
                      match float_of_string_opt v with
                      | Some f -> f
                      | None -> invalid_arg "Campaign.load_rows: malformed number")
                    values)
             in
             (parse_source source, row)
           | _ -> invalid_arg "Campaign.load_rows: malformed row")
    |> Array.of_list

let random_count sources =
  Array.fold_left
    (fun acc s -> match s with Runner.Random _ -> acc + 1 | _ -> acc)
    0 sources

let run ?domains ?pool ?(scale = Scale.of_env ()) ?slack_mode ~dir ?cases () =
  let cases = match cases with Some c -> c | None -> Case.paper_cases () in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let progress = Obs.Progress.create ~total:(List.length cases) "campaign" in
  let results =
    Obs.Progress.phase "campaign" (fun () ->
        List.map
          (fun case ->
            let path = Filename.concat dir (case.Case.id ^ ".csv") in
            let wanted = Scale.schedules scale case.Case.paper_schedules in
            let checkpoint =
              if Sys.file_exists path then
                match load_rows path with
                | pairs when random_count (Array.map fst pairs) >= wanted -> Some pairs
                | _ | (exception Invalid_argument _) -> None
              else None
            in
            let result =
              match checkpoint with
              | Some pairs ->
                Elog.info "campaign: %s loaded from checkpoint (%d rows)" case.Case.id
                  (Array.length pairs);
                {
                  case;
                  rows = Array.map snd pairs;
                  sources = Array.map fst pairs;
                  from_checkpoint = true;
                }
              | None ->
                Elog.debug "campaign: %s has no usable checkpoint, sweeping" case.Case.id;
                let result = Runner.run ?domains ?pool ~scale ?slack_mode case in
                ignore (Export.write_file ~dir ~name:(case.Case.id ^ ".csv")
                          (Export.schedules_csv result));
                {
                  case;
                  rows = result.Runner.rows;
                  sources = result.Runner.sources;
                  from_checkpoint = false;
                }
            in
            Obs.Progress.tick progress;
            result)
          cases)
  in
  Obs.Progress.finish progress;
  let matrices =
    List.map
      (fun r ->
        Correlate.matrix (Runner.random_rows_of ~sources:r.sources ~rows:r.rows))
      results
  in
  let mean, std = Correlate.mean_std matrices in
  { dir; results; mean; std }

let render t =
  let loaded = List.length (List.filter (fun r -> r.from_checkpoint) t.results) in
  Printf.sprintf
    "Campaign over %d cases in %s (%d loaded from checkpoints)\n\
     Pearson coefficients (upper: mean, lower: std dev):\n\n%s"
    (List.length t.results) t.dir loaded
    (Stats.Matrix_render.render_mean_std ~labels:Metrics.Robustness.labels t.mean t.std)
