(** The per-case sweep of §V–§VI: thousands of random schedules plus the
    heuristic schedules, each evaluated to its full metric vector. *)

type source =
  | Random of int  (** i-th random schedule *)
  | Heuristic of string  (** "HEFT", "BIL", "Hyb.BMCT" *)

type result = {
  instance : Case.instance;
  delta : float;  (** calibrated A(δ) bound *)
  gamma : float;  (** calibrated R(γ) bound *)
  sources : source array;
  rows : float array array;  (** raw metric vectors, {!Metrics.Robustness.labels} order *)
}

val heuristics : (string * (Dag.Graph.t -> Platform.t -> Sched.Schedule.t)) list
(** The paper's three heuristics, by name. *)

val run :
  ?domains:int ->
  ?scale:Scale.t ->
  ?slack_mode:Sched.Slack.graph_mode ->
  ?count:int ->
  Case.t ->
  result
(** Instantiate the case, generate random schedules + the heuristics,
    auto-calibrate δ and γ on a pilot batch (§V picked constants manually
    for its weight scale), then evaluate every schedule's metric vector in
    parallel through one shared {!Makespan.Engine} (classical makespan
    distribution + mean-weight slack, [`Disjunctive] by default).

    [count] overrides the number of random schedules (default
    [paper_schedules / scale]); with [~count:0] only the heuristic
    schedules are evaluated and the calibration pilot falls back to
    them. *)

val heuristic_rows : result -> (string * float array) list
(** The heuristics' raw metric vectors. *)

val random_rows : result -> float array array
(** The random schedules' raw metric vectors (correlations are computed
    on these, as in the paper). *)
