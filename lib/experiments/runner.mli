(** The per-case sweep of §V–§VI: thousands of random schedules plus the
    heuristic schedules, each evaluated to its full metric vector. *)

type source =
  | Random of int  (** i-th random schedule *)
  | Heuristic of string  (** "HEFT", "BIL", "Hyb.BMCT" *)

type result = {
  instance : Case.instance;
  delta : float;  (** calibrated A(δ) bound *)
  gamma : float;  (** calibrated R(γ) bound *)
  sources : source array;
  rows : float array array;  (** raw metric vectors, {!Metrics.Robustness.labels} order *)
}

val heuristics : (string * (Dag.Graph.t -> Platform.t -> Sched.Schedule.t)) list
(** The paper's three heuristics (HEFT, BIL, Hyb.BMCT), resolved through
    {!Sched.Registry}. *)

val scheduler : string -> string * (Dag.Graph.t -> Platform.t -> Sched.Schedule.t)
(** Resolve a registry name, alias, or [rank=...,select=...] composition
    to its canonical name and run function.
    Raises [Invalid_argument] on unknown names. *)

val run :
  ?domains:int ->
  ?pool:Parallel.Pool.t ->
  ?scale:Scale.t ->
  ?slack_mode:Sched.Slack.graph_mode ->
  ?count:int ->
  ?heuristics:(string * (Dag.Graph.t -> Platform.t -> Sched.Schedule.t)) list ->
  Case.t ->
  result
(** Instantiate the case, generate random schedules + the heuristics,
    auto-calibrate δ and γ on a pilot batch (§V picked constants manually
    for its weight scale), then evaluate every schedule's metric vector in
    parallel through one shared {!Makespan.Engine} (classical makespan
    distribution + mean-weight slack, [`Disjunctive] by default). The
    pilot schedules are the first entries of the sweep, and their pilot
    evaluations are reused for their metric rows rather than evaluated a
    second time.

    [count] overrides the number of random schedules (default
    [paper_schedules / scale]); with [~count:0] only the heuristic
    schedules are evaluated and the calibration pilot falls back to
    them. Worker selection follows {!Parallel.Pool.run}: explicit
    [?pool], legacy one-shot [?domains], or the shared persistent
    pool.

    [heuristics] overrides the heuristic schedules swept next to the
    random ones (default {!heuristics}); each entry is a (name, run)
    pair as produced by {!scheduler}. *)

val heuristic_rows : result -> (string * float array) list
(** The heuristics' raw metric vectors. *)

val random_rows : result -> float array array
(** The random schedules' raw metric vectors (correlations are computed
    on these, as in the paper). *)

val random_rows_of : sources:source array -> rows:float array array -> float array array
(** [random_rows] over any (sources, rows) pairing — one counting pass
    plus one fill pass, no intermediate lists. {!Campaign} uses this on
    checkpointed rows. *)
