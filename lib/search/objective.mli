(** Search objectives over engine evaluations.

    An objective maps one {!Makespan.Engine.evaluation} to a scalar that
    the optimizer {e minimizes}. Every one of the paper's eight
    robustness metrics is available; metrics the paper reads as
    better-when-larger (slack, A(δ), R(γ)) are negated so minimization
    is uniform — the orientation is monotone-equivalent to
    {!Metrics.Inversion} without depending on per-case slack maxima.

    The probabilistic metrics A(δ) and R(γ) need bounds; they are
    supplied through {!ctx} (see {!Metrics.Robustness.calibrate_bounds})
    and every other objective ignores them. *)

type t =
  | Expected_makespan  (** E(M) *)
  | Makespan_std  (** σ_M *)
  | Makespan_entropy  (** differential entropy h(M) *)
  | Avg_slack  (** −S: slack is better-when-larger *)
  | Slack_std  (** dispersion of per-task slacks *)
  | Avg_lateness  (** L = E(M|M>E(M)) − E(M) *)
  | Prob_absolute  (** −A(δ) *)
  | Prob_relative  (** −R(γ) *)
  | Blend of float  (** [Blend lambda] = E(M) + λ·σ_M *)

type ctx = { delta : float; gamma : float }
(** Bounds for A(δ) / R(γ); ignored by every other objective. *)

val parse : string -> (t, string) result
(** Accepted names: [makespan]/[em], [sigma_m]/[std], [entropy],
    [slack], [slack_std], [lateness], [a_delta]/[abs_prob],
    [r_gamma]/[rel_prob], and [blend:LAMBDA]. *)

val name : t -> string
(** Canonical token, reparsed by {!parse} (round-trips). *)

val needs_bounds : t -> bool
(** True for {!Prob_absolute} and {!Prob_relative}. *)

val value : t -> ctx -> Makespan.Engine.evaluation -> float
(** The scalar to minimize. Deterministic: same evaluation bits and same
    [ctx] give the same bits back. *)

val all : t list
(** The eight metric objectives (no blend), in {!Metrics.Robustness.labels}
    order — for listings and tests. *)
