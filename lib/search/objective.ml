type t =
  | Expected_makespan
  | Makespan_std
  | Makespan_entropy
  | Avg_slack
  | Slack_std
  | Avg_lateness
  | Prob_absolute
  | Prob_relative
  | Blend of float

type ctx = { delta : float; gamma : float }

let all =
  [
    Expected_makespan;
    Makespan_std;
    Makespan_entropy;
    Avg_slack;
    Slack_std;
    Avg_lateness;
    Prob_absolute;
    Prob_relative;
  ]

let name = function
  | Expected_makespan -> "makespan"
  | Makespan_std -> "sigma_m"
  | Makespan_entropy -> "entropy"
  | Avg_slack -> "slack"
  | Slack_std -> "slack_std"
  | Avg_lateness -> "lateness"
  | Prob_absolute -> "a_delta"
  | Prob_relative -> "r_gamma"
  | Blend lambda -> Printf.sprintf "blend:%.17g" lambda

let parse s =
  match String.lowercase_ascii s with
  | "makespan" | "em" | "e(m)" -> Ok Expected_makespan
  | "sigma_m" | "std" | "mk-std" -> Ok Makespan_std
  | "entropy" | "mk-entropy" -> Ok Makespan_entropy
  | "slack" | "avg-slack" -> Ok Avg_slack
  | "slack_std" | "slack-std" -> Ok Slack_std
  | "lateness" -> Ok Avg_lateness
  | "a_delta" | "abs_prob" | "abs-prob" -> Ok Prob_absolute
  | "r_gamma" | "rel_prob" | "rel-prob" -> Ok Prob_relative
  | s when String.length s > 6 && String.sub s 0 6 = "blend:" -> (
    let arg = String.sub s 6 (String.length s - 6) in
    match float_of_string_opt arg with
    | Some lambda when lambda >= 0. -> Ok (Blend lambda)
    | _ -> Error (Printf.sprintf "invalid blend weight %S (blend:LAMBDA, LAMBDA >= 0)" arg))
  | _ ->
    Error
      (Printf.sprintf
         "unknown objective %S \
          (makespan|sigma_m|entropy|slack|slack_std|lateness|a_delta|r_gamma|blend:LAMBDA)"
         s)

let needs_bounds = function Prob_absolute | Prob_relative -> true | _ -> false

let value t ctx (ev : Makespan.Engine.evaluation) =
  let open Distribution in
  let m = ev.Makespan.Engine.makespan in
  let slack = ev.Makespan.Engine.slack in
  match t with
  | Expected_makespan -> Dist.mean m
  | Makespan_std -> Dist.std m
  | Makespan_entropy -> Dist.entropy m
  | Avg_slack -> -.slack.Sched.Slack.total
  | Slack_std -> slack.Sched.Slack.std
  | Avg_lateness ->
    let mean = Dist.mean m in
    Dist.mean_above m mean -. mean
  | Prob_absolute ->
    let mean = Dist.mean m in
    -.Dist.prob_between m (mean -. ctx.delta) (mean +. ctx.delta)
  | Prob_relative ->
    let mean = Dist.mean m in
    -.Dist.prob_between m (mean /. ctx.gamma) (mean *. ctx.gamma)
  | Blend lambda -> Dist.mean m +. (lambda *. Dist.std m)
