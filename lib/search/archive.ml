type axis = [ `Sigma | `Slack ]

type point = {
  step : int;
  em : float;
  sigma : float;
  slack : float;
  objective : float;
  sched : Sched.Schedule.t;
}

type t = { axis : axis; mutable pts : point list (* sorted by increasing em *) }

let create ~axis = { axis; pts = [] }
let axis t = t.axis

let y t p = match t.axis with `Sigma -> p.sigma | `Slack -> -.p.slack

(* q dominates p when q is no worse on both coordinates and not exactly
   equal on both — so exact ties go to the incumbent and the frontier is
   insertion-order deterministic. *)
let dominates t q p =
  q.em <= p.em && y t q <= y t p && not (q.em = p.em && y t q = y t p)

let offer t p =
  if List.exists (fun q -> dominates t q p || (q.em = p.em && y t q = y t p)) t.pts then
    false
  else begin
    let survivors = List.filter (fun q -> not (dominates t p q)) t.pts in
    let rec insert = function
      | [] -> [ p ]
      | q :: rest when q.em < p.em -> q :: insert rest
      | rest -> p :: rest
    in
    t.pts <- insert survivors;
    true
  end

let points t = t.pts
let size t = List.length t.pts

let csv_header = "index,step,expected_makespan,makespan_std,slack_total,objective,schedule"

let flat_sched sched =
  String.concat "|"
    (List.filter
       (fun l -> l <> "")
       (String.split_on_char '\n' (Sched.Schedule.to_string sched)))

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf csv_header;
  Buffer.add_char buf '\n';
  List.iteri
    (fun i p ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%.17g,%.17g,%.17g,%.17g,%s\n" i p.step p.em p.sigma
           p.slack p.objective (flat_sched p.sched)))
    t.pts;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\"axis\":%S,\"points\":["
       (match t.axis with `Sigma -> "sigma" | `Slack -> "slack"));
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"step\":%d,\"expected_makespan\":%.17g,\"makespan_std\":%.17g,\
            \"slack_total\":%.17g,\"objective\":%.17g,\"schedule\":%S}"
           p.step p.em p.sigma p.slack p.objective (flat_sched p.sched)))
    t.pts;
  Buffer.add_string buf "]}";
  Buffer.contents buf
