(* Simulated annealing / stochastic local search over schedules
   (DESIGN.md §17). The hot loop probes one-task reassigns and task
   swaps through a single incremental engine session
   ([Engine.reevaluate_* ~commit:false]) and replays the move with
   [commit:true] only on acceptance, so the expensive path is paid twice
   only for the accepted minority. Priority-perturbation moves rebuild a
   schedule through the list-scheduler driver with a jittered rank table
   — a full evaluation, kept rare by the default move mix. *)

module Engine = Makespan.Engine

type cooling = Geometric of float option | Adaptive of { target : float; window : int }

type policy = Hill_climb | Metropolis of { t0 : float option; cooling : cooling }

type move_mix = { reassign : int; swap : int; priority : int }

type config = {
  objective : Objective.t;
  steps : int;
  seed : int64;
  policy : policy;
  restarts : int;
  init : string;
  mix : move_mix;
  max_cone : int option;
  delta : float option;
  gamma : float option;
  axis : Archive.axis;
}

let default =
  {
    objective = Objective.Makespan_std;
    steps = 400;
    seed = 0L;
    policy = Metropolis { t0 = None; cooling = Geometric None };
    restarts = 0;
    init = "HEFT";
    mix = { reassign = 12; swap = 3; priority = 1 };
    max_cone = None;
    delta = None;
    gamma = None;
    axis = `Sigma;
  }

type stats = {
  steps_done : int;
  probes : int;
  accepted : int;
  infeasible : int;
  priority_moves : int;
  restarts_done : int;
  reevals : int;
  reeval_incremental : int;
  reeval_full : int;
  full_evals : int;
}

let incremental_fraction s =
  let work = s.reevals + s.full_evals in
  if work = 0 then nan else float_of_int s.reeval_incremental /. float_of_int work

type outcome = {
  best : Sched.Schedule.t;
  best_eval : Engine.evaluation;
  best_objective : float;
  init_objective : float;
  bounds : Objective.ctx;
  frontier : Archive.t;
  stats : stats;
  interrupted : bool;
}

let m_steps = Obs.Metrics.counter "search.steps"
let m_probes = Obs.Metrics.counter "search.probes"
let m_accepted = Obs.Metrics.counter "search.accepted"
let m_infeasible = Obs.Metrics.counter "search.infeasible"
let m_frontier_inserts = Obs.Metrics.counter "search.frontier_inserts"

(* Priority-perturbation moves always replay the HEFT-family driver
   (upward ranks × EFT × insertion): the jitter explores rank orderings,
   not selection rules, and keeping the replay spec fixed makes the move
   independent of which scheduler seeded the search. *)
let replay_spec = Sched.Heft.spec ()

let point_of ~step ~objective (ev : Engine.evaluation) sched =
  {
    Archive.step;
    em = Distribution.Dist.mean ev.Engine.makespan;
    sigma = Distribution.Dist.std ev.Engine.makespan;
    slack = ev.Engine.slack.Sched.Slack.total;
    objective;
    sched;
  }

let run ?(should_stop = fun () -> false) ~engine ~init config =
  if config.steps < 0 then invalid_arg "Anneal.run: steps must be >= 0";
  if config.restarts < 0 then invalid_arg "Anneal.run: restarts must be >= 0";
  let { reassign = w_re; swap = w_sw; priority = w_pr } = config.mix in
  if w_re < 0 || w_sw < 0 || w_pr < 0 || w_re + w_sw + w_pr = 0 then
    invalid_arg "Anneal.run: move mix weights must be >= 0 and not all zero";
  let graph = Engine.graph engine in
  let platform = Engine.platform engine in
  (* The engine's default cone cutoff (n/2) bounds worst-case probe cost
     for interactive callers; for search every dirty-cone replay beats a
     fresh sweep (only dirty nodes are recomputed), so default to the
     whole graph and fall back only on non-incremental backends. *)
  let max_cone =
    match config.max_cone with Some c -> c | None -> Dag.Graph.n_tasks graph
  in
  let engine_before = Engine.stats engine in
  let full_evals = ref 0 in
  let start_session sched =
    incr full_evals;
    Engine.start_session engine sched
  in
  let session = ref (start_session init) in
  let init_eval = Engine.session_evaluation !session in
  let bounds =
    let em0 = Distribution.Dist.mean init_eval.Engine.makespan in
    let sigma0 = Distribution.Dist.std init_eval.Engine.makespan in
    let d0, g0 = Metrics.Robustness.calibrate_bounds [ (em0, sigma0) ] in
    {
      Objective.delta = (match config.delta with Some d -> d | None -> d0);
      gamma = (match config.gamma with Some g -> g | None -> g0);
    }
  in
  let value ev = Objective.value config.objective bounds ev in
  let init_objective = value init_eval in
  let frontier = Archive.create ~axis:config.axis in
  let offer ~step ev sched objective =
    if Archive.offer frontier (point_of ~step ~objective ev sched) then
      Obs.Metrics.incr m_frontier_inserts
  in
  offer ~step:0 init_eval init init_objective;
  let best = ref init and best_eval = ref init_eval and best_obj = ref init_objective in
  let cur_obj = ref init_objective in
  let steps_done = ref 0
  and probes = ref 0
  and accepted = ref 0
  and infeasible = ref 0
  and priority_moves = ref 0
  and restarts_done = ref 0 in
  let interrupted = ref false in
  let progress = Obs.Progress.create ~total:config.steps "optimize" in
  (* base rank table for priority jitter, computed once *)
  let base_priority = (Sched.List_scheduler.prepare replay_spec graph platform).priority in
  let prio_scale =
    let lo = Array.fold_left Float.min infinity base_priority in
    let hi = Array.fold_left Float.max neg_infinity base_priority in
    let r = hi -. lo in
    if r > 0. then r else Float.max 1. (Float.abs hi)
  in
  let root = Prng.Splitmix.create config.seed in
  let runs = config.restarts + 1 in
  let chunk r =
    (config.steps / runs) + if r < config.steps mod runs then 1 else 0
  in
  let accept_worse rng d t =
    t > 0. && Prng.Splitmix.next_float rng < exp (-.d /. t)
  in
  (try
     for r = 0 to runs - 1 do
       if not !interrupted then begin
         if r > 0 then begin
           incr restarts_done;
           session := start_session !best;
           cur_obj := !best_obj
         end;
         let run_sm = Prng.Splitmix.split root in
         let move_rng = Prng.Xoshiro.of_splitmix (Prng.Splitmix.split run_sm) in
         let accept_rng = Prng.Splitmix.split run_sm in
         let jitter_rng = Prng.Xoshiro.of_splitmix (Prng.Splitmix.split run_sm) in
         let steps_this_run = chunk r in
         let t0 =
           match config.policy with
           | Hill_climb -> 0.
           | Metropolis { t0 = Some t; _ } -> t
           | Metropolis { t0 = None; _ } -> 0.05 *. Float.max 1e-12 (Float.abs !cur_obj)
         in
         let auto_alpha =
           if steps_this_run <= 1 then 1.
           else exp (log 1e-3 /. float_of_int (steps_this_run - 1))
         in
         let alpha =
           match config.policy with
           | Hill_climb -> 1.
           | Metropolis { cooling = Geometric (Some a); _ } -> a
           | Metropolis { cooling = Geometric None | Adaptive _; _ } -> auto_alpha
         in
         let temp = ref t0 in
         let window_accepted = ref 0 and window_steps = ref 0 in
         let step = ref 0 in
         while !step < steps_this_run && not !interrupted do
           if should_stop () then interrupted := true
           else begin
             incr step;
             incr steps_done;
             Fault.cut "search.step";
             Obs.Metrics.incr m_steps;
             Obs.Progress.tick progress;
             let total_w = w_re + w_sw + w_pr in
             let draw = Prng.Xoshiro.int move_rng total_w in
             let candidate =
               if draw < w_re then begin
                 let m = Sched.Neighbor.random ~rng:move_rng (Engine.session_schedule !session) in
                 if Sched.Neighbor.is_noop (Engine.session_schedule !session) m then None
                 else Some (`Session (Sched.Neighbor.Reassign m))
               end
               else if draw < w_re + w_sw then
                 match Sched.Neighbor.random_swap ~rng:move_rng (Engine.session_schedule !session) with
                 | None -> None
                 | Some s -> Some (`Session (Sched.Neighbor.Swap s))
               else begin
                 let priority =
                   Array.map
                     (fun p ->
                       p +. (0.3 *. prio_scale *. ((2. *. Prng.Xoshiro.next_float jitter_rng) -. 1.)))
                     base_priority
                 in
                 let sched' = Sched.List_scheduler.run_ranked replay_spec ~priority graph platform in
                 if
                   Sched.Schedule.to_string sched'
                   = Sched.Schedule.to_string (Engine.session_schedule !session)
                 then None
                 else Some (`Rebuild sched')
               end
             in
             (* moves are validated against [Schedule.validate] before any
                probe touches the session *)
             let candidate =
               match candidate with
               | Some (`Session mv) -> (
                 match Sched.Neighbor.apply_any_opt (Engine.session_schedule !session) mv with
                 | None -> None
                 | Some sched' -> (
                   match Sched.Schedule.validate sched' with
                   | Ok () -> Some (`Session mv)
                   | Error _ -> None))
               | Some (`Rebuild sched') -> (
                 match Sched.Schedule.validate sched' with
                 | Ok () -> Some (`Rebuild sched')
                 | Error _ -> None)
               | None -> None
             in
             (match candidate with
             | None ->
               incr infeasible;
               Obs.Metrics.incr m_infeasible
             | Some probe ->
               incr probes;
               Obs.Metrics.incr m_probes;
               let ev, commit =
                 match probe with
                 | `Session mv ->
                   let ev =
                     Engine.reevaluate_any ~commit:false ~max_cone !session mv
                   in
                   ( ev,
                     fun () ->
                       ignore
                         (Engine.reevaluate_any ~commit:true ~max_cone
                            !session mv
                           : Engine.evaluation) )
                 | `Rebuild sched' ->
                   incr priority_moves;
                   let s' = start_session sched' in
                   (Engine.session_evaluation s', fun () -> session := s')
               in
               let obj = value ev in
               let sched' =
                 match probe with
                 | `Session mv -> Sched.Neighbor.apply_any (Engine.session_schedule !session) mv
                 | `Rebuild sched' -> sched'
               in
               offer ~step:!steps_done ev sched' obj;
               let d = obj -. !cur_obj in
               let accept =
                 match config.policy with
                 | Hill_climb -> d < 0.
                 | Metropolis _ -> d <= 0. || accept_worse accept_rng d !temp
               in
               if accept then begin
                 incr accepted;
                 incr window_accepted;
                 Obs.Metrics.incr m_accepted;
                 commit ();
                 cur_obj := obj;
                 if obj < !best_obj then begin
                   best := Engine.session_schedule !session;
                   best_eval := ev;
                   best_obj := obj
                 end
               end);
             temp := !temp *. alpha;
             incr window_steps;
             (match config.policy with
             | Metropolis { cooling = Adaptive { target; window }; _ }
               when window > 0 && !window_steps >= window ->
               let rate = float_of_int !window_accepted /. float_of_int !window_steps in
               temp := !temp *. exp (target -. rate);
               window_accepted := 0;
               window_steps := 0
             | _ -> ())
           end
         done
       end
     done
   with exn ->
     Obs.Progress.finish progress;
     raise exn);
  Obs.Progress.finish progress;
  let engine_after = Engine.stats engine in
  let stats =
    {
      steps_done = !steps_done;
      probes = !probes;
      accepted = !accepted;
      infeasible = !infeasible;
      priority_moves = !priority_moves;
      restarts_done = !restarts_done;
      reevals = engine_after.Engine.reevals - engine_before.Engine.reevals;
      reeval_incremental =
        engine_after.Engine.reeval_incremental - engine_before.Engine.reeval_incremental;
      reeval_full = engine_after.Engine.reeval_full - engine_before.Engine.reeval_full;
      full_evals = !full_evals;
    }
  in
  {
    best = !best;
    best_eval = !best_eval;
    best_objective = !best_obj;
    init_objective;
    bounds;
    frontier;
    stats;
    interrupted = !interrupted;
  }

(* ---------------- anneal:... registry specs ---------------- *)

let spec_prefix = "anneal:"

let has_prefix s =
  String.length s >= String.length spec_prefix
  && String.sub s 0 (String.length spec_prefix) = spec_prefix

let float_key = Printf.sprintf "%.17g"

let parse_float ~key s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "invalid %s value %S" key s)

let parse_int ~key s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "invalid %s value %S" key s)

let parse_mix s =
  match String.split_on_char ':' s with
  | [ r; sw; p ] -> (
    match (int_of_string_opt r, int_of_string_opt sw, int_of_string_opt p) with
    | Some reassign, Some swap, Some priority when reassign >= 0 && swap >= 0 && priority >= 0
      -> Ok { reassign; swap; priority }
    | _ -> Error (Printf.sprintf "invalid mix %S (REASSIGN:SWAP:PRIORITY)" s))
  | _ -> Error (Printf.sprintf "invalid mix %S (REASSIGN:SWAP:PRIORITY)" s)

let parse_spec s =
  if not (has_prefix s) then Error (Printf.sprintf "not an anneal spec: %S" s)
  else begin
    let body = String.sub s (String.length spec_prefix) (String.length s - String.length spec_prefix) in
    let parts =
      String.split_on_char ',' (String.map (fun c -> if c = ';' then ',' else c) body)
      |> List.filter (fun p -> String.trim p <> "")
    in
    let ( let* ) = Result.bind in
    let* kvs =
      List.fold_left
        (fun acc part ->
          let* acc = acc in
          match String.index_opt part '=' with
          | None -> Error (Printf.sprintf "malformed anneal component %S (expected key=value)" part)
          | Some i ->
            let k = String.sub part 0 i and v = String.sub part (i + 1) (String.length part - i - 1) in
            if List.mem_assoc k acc then Error (Printf.sprintf "duplicate anneal component %S" k)
            else Ok (acc @ [ (k, v) ]))
        (Ok []) parts
    in
    let combo_keys = [ "rank"; "select"; "insert"; "tie" ] in
    let known =
      [
        "obj"; "steps"; "seed"; "restarts"; "policy"; "t0"; "alpha"; "target"; "window";
        "init"; "mix"; "max-cone"; "delta"; "gamma"; "axis"; "ul";
      ]
      @ combo_keys
    in
    let* () =
      List.fold_left
        (fun acc (k, _) ->
          let* () = acc in
          if List.mem k known then Ok ()
          else Error (Printf.sprintf "unknown anneal component %S" k))
        (Ok ()) kvs
    in
    let get k = List.assoc_opt k kvs in
    let* objective = match get "obj" with None -> Ok default.objective | Some v -> Objective.parse v in
    let* steps = match get "steps" with None -> Ok default.steps | Some v -> parse_int ~key:"steps" v in
    let* seed =
      match get "seed" with
      | None -> Ok default.seed
      | Some v -> (
        match Int64.of_string_opt v with
        | Some s -> Ok s
        | None -> Error (Printf.sprintf "invalid seed value %S" v))
    in
    let* restarts =
      match get "restarts" with None -> Ok default.restarts | Some v -> parse_int ~key:"restarts" v
    in
    let* t0 =
      match get "t0" with None -> Ok None | Some v -> Result.map Option.some (parse_float ~key:"t0" v)
    in
    let* alpha =
      match get "alpha" with
      | None -> Ok None
      | Some v -> Result.map Option.some (parse_float ~key:"alpha" v)
    in
    let* target =
      match get "target" with
      | None -> Ok None
      | Some v -> Result.map Option.some (parse_float ~key:"target" v)
    in
    let* window =
      match get "window" with
      | None -> Ok None
      | Some v -> Result.map Option.some (parse_int ~key:"window" v)
    in
    let* policy =
      match get "policy" with
      | None | Some "metropolis" -> (
        match target with
        | Some t ->
          Ok (Metropolis { t0; cooling = Adaptive { target = t; window = Option.value window ~default:32 } })
        | None -> Ok (Metropolis { t0; cooling = Geometric alpha }))
      | Some "hill" -> Ok Hill_climb
      | Some "adaptive" ->
        Ok
          (Metropolis
             {
               t0;
               cooling =
                 Adaptive
                   {
                     target = Option.value target ~default:0.25;
                     window = Option.value window ~default:32;
                   };
             })
      | Some p -> Error (Printf.sprintf "unknown policy %S (hill|metropolis|adaptive)" p)
    in
    let* init =
      let combo =
        List.filter_map (fun k -> Option.map (fun v -> k ^ "=" ^ v) (get k)) combo_keys
      in
      match (get "init", combo) with
      | Some _, _ :: _ -> Error "anneal spec: give either init= or rank=/select=/... , not both"
      | Some v, [] -> Ok v
      | None, [] -> Ok default.init
      | None, combo -> Ok (String.concat "," combo)
    in
    (* resolve now so the canonical spec names the canonical scheduler *)
    let* init =
      match Sched.Registry.parse init with
      | Ok e -> Ok e.Sched.Registry.name
      | Error e -> Error e
    in
    let* mix = match get "mix" with None -> Ok default.mix | Some v -> parse_mix v in
    let* max_cone =
      match get "max-cone" with
      | None -> Ok None
      | Some v -> Result.map Option.some (parse_int ~key:"max-cone" v)
    in
    let* delta =
      match get "delta" with
      | None -> Ok None
      | Some v -> Result.map Option.some (parse_float ~key:"delta" v)
    in
    let* gamma =
      match get "gamma" with
      | None -> Ok None
      | Some v -> Result.map Option.some (parse_float ~key:"gamma" v)
    in
    let* axis =
      match get "axis" with
      | None | Some "sigma" -> Ok `Sigma
      | Some "slack" -> Ok `Slack
      | Some a -> Error (Printf.sprintf "unknown axis %S (sigma|slack)" a)
    in
    let* ul = match get "ul" with None -> Ok 1.1 | Some v -> parse_float ~key:"ul" v in
    if steps < 0 then Error "anneal spec: steps must be >= 0"
    else if restarts < 0 then Error "anneal spec: restarts must be >= 0"
    else
      Ok
        ( {
            objective;
            steps;
            seed;
            policy;
            restarts;
            init;
            mix;
            max_cone;
            delta;
            gamma;
            axis;
          },
          ul )
  end

let canonical_spec c ~ul =
  let buf = Buffer.create 128 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ ";")) fmt in
  Buffer.add_string buf spec_prefix;
  add "obj=%s" (Objective.name c.objective);
  add "steps=%d" c.steps;
  add "seed=%Ld" c.seed;
  if c.restarts <> default.restarts then add "restarts=%d" c.restarts;
  (match c.policy with
  | Hill_climb -> add "policy=hill"
  | Metropolis { t0; cooling } ->
    (match cooling with
    | Geometric alpha ->
      add "policy=metropolis";
      Option.iter (fun a -> add "alpha=%s" (float_key a)) alpha
    | Adaptive { target; window } ->
      add "policy=adaptive";
      add "target=%s" (float_key target);
      add "window=%d" window);
    Option.iter (fun t -> add "t0=%s" (float_key t)) t0);
  (* a composed init is re-emitted as its component keys so the spec
     splits cleanly on ';' *)
  if String.contains c.init '=' then
    List.iter
      (fun part -> if part <> "" then add "%s" part)
      (String.split_on_char ','
         (String.map (fun ch -> if ch = ';' then ',' else ch) c.init))
  else add "init=%s" c.init;
  add "mix=%d:%d:%d" c.mix.reassign c.mix.swap c.mix.priority;
  Option.iter (fun m -> add "max-cone=%d" m) c.max_cone;
  Option.iter (fun d -> add "delta=%s" (float_key d)) c.delta;
  Option.iter (fun g -> add "gamma=%s" (float_key g)) c.gamma;
  (match c.axis with `Sigma -> () | `Slack -> add "axis=slack");
  add "ul=%s" (float_key ul);
  (* drop the trailing separator *)
  String.sub (Buffer.contents buf) 0 (Buffer.length buf - 1)

let entry_of_spec s =
  match parse_spec s with
  | Error e -> Error e
  | Ok (config, ul) ->
    Ok
      {
        Sched.Registry.name = canonical_spec config ~ul;
        aliases = [];
        rank = "anneal";
        select = Objective.name config.objective;
        insert = "-";
        provenance = "simulated annealing over " ^ config.init;
        run =
          (fun graph platform ->
            let model = Workloads.Stochastify.make ~ul () in
            let engine = Makespan.Engine.create ~graph ~platform ~model in
            let init =
              match Sched.Registry.parse config.init with
              | Ok e -> e.Sched.Registry.run graph platform
              | Error e -> invalid_arg ("anneal init scheduler: " ^ e)
            in
            (run ~engine ~init config).best);
      }

let () =
  Sched.Registry.register_extension (fun s ->
      if has_prefix s then Some (entry_of_spec s) else None)
