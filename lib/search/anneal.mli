(** Stochastic local search / simulated annealing over schedules.

    The optimizer walks the schedule neighborhood (one-task reassigns and
    task swaps probed through an incremental {!Makespan.Engine} session,
    plus occasional priority-perturbation rebuilds replayed through
    {!Sched.List_scheduler.run_ranked}), minimizing any {!Objective.t}.
    Every accepted incremental objective value is bitwise-equal to a
    fresh [Engine.analyze] of the same schedule — that is the session
    contract this module inherits and the determinism tests enforce.

    Runs are byte-reproducible: all randomness flows from [config.seed]
    through SplitMix64-derived streams, and the Pareto {!Archive} breaks
    ties by insertion order. *)

type cooling =
  | Geometric of float option
      (** per-step factor; [None] picks α with T decayed 1000× over the run *)
  | Adaptive of { target : float; window : int }
      (** geometric base plus a per-[window] correction steering the
          acceptance rate toward [target] *)

type policy =
  | Hill_climb  (** accept strict improvements only *)
  | Metropolis of { t0 : float option; cooling : cooling }
      (** accept worsenings with probability exp(−Δ/T);
          [t0 = None] starts at 5% of the initial objective magnitude *)

type move_mix = { reassign : int; swap : int; priority : int }
(** Relative draw weights of the three move generators. *)

type config = {
  objective : Objective.t;
  steps : int;  (** total probe budget, split across restarts *)
  seed : int64;
  policy : policy;
  restarts : int;  (** extra runs re-seeded from the incumbent best *)
  init : string;  (** registry name of the initial scheduler *)
  mix : move_mix;
  max_cone : int option;  (** forwarded to [Engine.reevaluate] *)
  delta : float option;  (** A(δ) bound; [None] calibrates from the initial schedule *)
  gamma : float option;  (** R(γ) bound; same convention *)
  axis : Archive.axis;  (** frontier y-coordinate: σ_M or −slack *)
}

val default : config
(** σ_M objective, 400 steps, seed 0, Metropolis with auto geometric
    cooling, no restarts, HEFT init, mix 12:3:1, engine-default cone
    cutoff, calibrated bounds, σ frontier. *)

type stats = {
  steps_done : int;
  probes : int;  (** neighbor evaluations, including commit replays *)
  accepted : int;
  infeasible : int;  (** draws rejected by validation before probing *)
  priority_moves : int;
  restarts_done : int;
  reevals : int;  (** engine re-evaluations issued by this run *)
  reeval_incremental : int;
  reeval_full : int;
  full_evals : int;  (** fresh full sweeps (sessions and priority probes) *)
}

val incremental_fraction : stats -> float
(** [reeval_incremental / (reevals + full_evals)] — the fraction of all
    evaluation work served by dirty-cone replay; [nan] when idle. *)

type outcome = {
  best : Sched.Schedule.t;
  best_eval : Makespan.Engine.evaluation;
  best_objective : float;
  init_objective : float;
  bounds : Objective.ctx;  (** the δ/γ actually used *)
  frontier : Archive.t;
  stats : stats;
  interrupted : bool;  (** [should_stop] fired mid-run *)
}

val run :
  ?should_stop:(unit -> bool) ->
  engine:Makespan.Engine.t ->
  init:Sched.Schedule.t ->
  config ->
  outcome
(** Optimize [config.objective] starting from [init] (which must belong
    to [engine]'s graph). Cuts the {!Fault} point ["search.step"] once
    per step; emits [search.*] counters and a progress bar through
    {!Obs} when enabled. [should_stop] is polled every step — on [true]
    the partial result is returned with [interrupted = true]. *)

(** {1 Registry specs}

    [anneal:key=value;...] strings resolve through {!Sched.Registry.parse}
    (the extension is registered when this library is linked), so
    annealed schedulers flow into campaigns, [repro eval] and the
    service. Keys: [obj], [steps], [seed], [restarts], [policy]
    ([hill]|[metropolis]|[adaptive]), [t0], [alpha], [target], [window],
    [init], [rank]/[select]/[insert]/[tie] (composition init), [mix]
    ([R:S:P]), [max-cone], [delta], [gamma], [axis], [ul] (the surrogate
    uncertainty level of the model the entry evaluates under, default
    1.1). Separators [';'] or [',']. *)

val spec_prefix : string
(** ["anneal:"]. *)

val parse_spec : string -> (config * float, string) result
(** The configuration and surrogate UL encoded in an [anneal:...] spec. *)

val canonical_spec : config -> ul:float -> string
(** Canonical spec string: [parse_spec (canonical_spec c ~ul)] returns
    an equal configuration, and canonicalization is idempotent. This is
    the name [repro optimize] reports so its exact run can be replayed
    by name anywhere a scheduler name is accepted. *)
