(** Deterministic Pareto-frontier archive.

    Tracks the non-dominated set over two minimized coordinates:
    x = E(M) always, y = σ_M ([`Sigma]) or y = −S ([`Slack], so more
    total slack is better) — the paper's makespan-vs-robustness and
    makespan-vs-slack trades. Insertion order breaks exact ties (the
    incumbent wins), so the frontier — and its CSV/JSON renderings — are
    byte-deterministic for a deterministic offer sequence. *)

type axis = [ `Sigma | `Slack ]

type point = {
  step : int;  (** global step index the point was found at (0 = initial) *)
  em : float;  (** E(M) *)
  sigma : float;  (** σ_M *)
  slack : float;  (** total slack S *)
  objective : float;  (** the search objective's value at this point *)
  sched : Sched.Schedule.t;
}

type t

val create : axis:axis -> t
val axis : t -> axis

val offer : t -> point -> bool
(** Insert if non-dominated; evict newly dominated points. Returns
    whether the point entered the frontier. A point exactly tying an
    incumbent on both coordinates is rejected. *)

val points : t -> point list
(** The frontier, sorted by increasing E(M) (hence decreasing y). *)

val size : t -> int

val csv_header : string
(** Exactly
    ["index,step,expected_makespan,makespan_std,slack_total,objective,schedule"]
    — the schema contract tested by the frontier column-order test. *)

val to_csv : t -> string
(** One row per frontier point in {!points} order; floats printed with
    ["%.17g"] (round-trip exact), schedules on one line with newlines
    rendered as ['|']. *)

val to_json : t -> string
(** Same data as {!to_csv} as a JSON object
    [{"axis": ..., "points": [...]}]. *)
