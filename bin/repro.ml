(* Command-line driver regenerating every table/figure of the paper.
   `repro all` prints the full reproduction at the ambient REPRO_SCALE;
   `--out DIR` additionally writes CSV data (and gnuplot scripts for the
   series/density figures) for external plotting. *)

open Cmdliner
module E = Experiments

let scale_arg =
  let parse s =
    match String.lowercase_ascii s with
    | "smoke" -> Ok E.Scale.smoke
    | "small" -> Ok E.Scale.small
    | "full" | "paper" -> Ok E.Scale.full
    | other -> Error (`Msg (Printf.sprintf "unknown scale %S (smoke|small|full)" other))
  in
  let print fmt (s : E.Scale.t) = Format.pp_print_string fmt s.E.Scale.name in
  Arg.(
    value
    & opt (conv (parse, print)) (E.Scale.of_env ())
    & info [ "scale" ] ~docv:"SCALE"
        ~doc:"Experiment scale: smoke, small (default; also via REPRO_SCALE) or full.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "domains" ] ~docv:"N" ~doc:"Worker domains (default: cores - 1).")

let seed_arg =
  Arg.(
    value
    & opt int64 0L
    & info [ "seed" ] ~docv:"SEED" ~doc:"Offset added to built-in experiment seeds.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"DIR" ~doc:"Also write CSV data (and gnuplot scripts) to $(docv).")

let verbose_arg =
  Arg.(
    value & flag_all
    & info [ "v"; "verbose" ]
        ~doc:"Log sweep progress to stderr (info); repeat ($(b,-vv)) for debug detail.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record span traces and write them to $(docv) as Chrome trace-event JSON \
           (open in chrome://tracing or ui.perfetto.dev).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Record engine/pool/Monte-Carlo counters and write the merged registry to \
           $(docv) as JSON.")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ] ~doc:"Report per-sweep rate/ETA and phase GC stats to stderr.")

let fault_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault-spec" ] ~docv:"SPEC"
        ~doc:
          "Arm deterministic fault-injection probes (testing aid; see DESIGN.md §9). \
           $(docv) is 'point:action[@N][:k=v]...' clauses joined by ';', e.g. \
           $(b,runner.eval:fail@1) or $(b,pool.chunk:delay:p=0.01:seed=7:ms=5).")

let moment_depth_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "moment-depth" ] ~docv:"K"
        ~doc:
          "Moment-space fast path: replace a sum of distributions whose combined \
           convolution-chain depth reaches $(docv) (>= 2) by its CLT normal, with a \
           certified Berry-Esseen error bound carried on every result. Default: exact \
           convolution everywhere (bit-reproducible output).")

let exact_arg =
  Arg.(
    value & flag
    & info [ "exact" ]
        ~doc:
          "Force exact sampled convolution, overriding $(b,--moment-depth). This is \
           already the default; the flag is the explicit escape hatch for scripts that \
           must pin byte-reproducible output.")

let setup_chain_mode ~exact ~moment_depth =
  match (exact, moment_depth) with
  | true, _ | false, None -> Distribution.Dist.set_chain_mode Distribution.Dist.Exact
  | false, Some k ->
    if k < 2 then begin
      prerr_endline "repro: --moment-depth must be >= 2";
      Stdlib.exit 2
    end;
    Distribution.Dist.set_chain_mode (Distribution.Dist.Moment k)

let setup_logging verbosity =
  if verbosity > 0 then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.Src.set_level E.Elog.src
      (Some (if verbosity >= 2 then Logs.Debug else Logs.Info))
  end

type ctx = {
  scale : E.Scale.t;
  domains : int option;
  seed : int64;
  out : string option;
  trace : string option;
  metrics : string option;
}

let save ctx name content =
  match ctx.out with
  | None -> ()
  | Some dir ->
    let path = E.Export.write_file ~dir ~name content in
    Printf.printf "[wrote %s]\n" path

let run_fig1 ctx =
  let t = E.Fig1.run ?domains:ctx.domains ~scale:ctx.scale ~seed:(Int64.add 11L ctx.seed) () in
  print_string (E.Fig1.render t);
  save ctx "fig1.csv" (E.Export.fig1_csv t);
  save ctx "fig1.gp" (E.Export.gnuplot_fig1 ~data:"fig1.csv")

let run_fig2 ctx =
  let t = E.Fig2.run ?domains:ctx.domains ~scale:ctx.scale ~seed:(Int64.add 21L ctx.seed) () in
  print_string (E.Fig2.render t);
  save ctx "fig2.csv" (E.Export.fig2_csv t);
  save ctx "fig2.gp"
    (E.Export.gnuplot_density ~data:"fig2.csv" ~title:"calculated vs experimental density")

let run_fig_corr spec name ctx =
  let t = E.Fig_corr.run ?domains:ctx.domains ~scale:ctx.scale spec in
  print_string (E.Fig_corr.render t);
  save ctx (name ^ "-matrix.csv") (E.Export.fig_corr_csv t);
  save ctx (name ^ "-schedules.csv") (E.Export.schedules_csv t.E.Fig_corr.result)

let run_fig6 ctx =
  let t = E.Fig6.run ?domains:ctx.domains ~scale:ctx.scale () in
  print_string (E.Fig6.render t);
  print_newline ();
  print_string (E.Intext.render_rel_prob (E.Intext.rel_prob_vs_std t.E.Fig6.results));
  save ctx "fig6.csv" (E.Export.fig6_csv t)

let run_fig7 ctx =
  let t = E.Fig7.run () in
  print_string (E.Fig7.render t);
  save ctx "fig7.csv" (E.Export.fig7_csv t);
  save ctx "fig7.gp"
    (E.Export.gnuplot_density ~data:"fig7.csv" ~title:"special vs normal distribution")

let run_fig8 ctx =
  let t = E.Fig8.run () in
  print_string (E.Fig8.render t);
  save ctx "fig8.csv" (E.Export.fig8_csv t);
  save ctx "fig8.gp" (E.Export.gnuplot_fig8 ~data:"fig8.csv")

let run_fig9 ctx =
  let t = E.Fig9.run () in
  print_string (E.Fig9.render t);
  save ctx "fig9.csv" (E.Export.fig9_csv t)

let run_methods ctx =
  print_string
    (E.Intext.render_methods (E.Intext.methods_vs_mc ?domains:ctx.domains ~scale:ctx.scale ()))

let run_ablation ctx =
  print_string
    (E.Ablation.render_correlation
       (E.Ablation.correlation_under_variable_ul ?domains:ctx.domains ~scale:ctx.scale
          ~seed:(Int64.add 51L ctx.seed) ()));
  print_newline ();
  print_string
    (E.Ablation.render_shapes
       (E.Ablation.cluster_under_shapes ?domains:ctx.domains ~scale:ctx.scale
          ~seed:(Int64.add 61L ctx.seed) ()));
  print_newline ();
  print_string
    (E.Ablation.render_tradeoff
       (E.Ablation.robust_heft_tradeoff ~seed:(Int64.add 17L ctx.seed) ()));
  print_newline ();
  print_string
    (E.Ablation.render_pareto
       (E.Ablation.pareto_front_study ?domains:ctx.domains ~scale:ctx.scale
          ~seed:(Int64.add 71L ctx.seed) ()))

(* --- schedule inspection commands --- *)

let heuristics_with_extras =
  List.map (fun e -> (e.Sched.Registry.name, e.Sched.Registry.run)) Sched.Registry.entries

let run_sched_list () =
  let open Sched.Registry in
  Printf.printf "%-10s %-16s %-16s %-10s %s\n" "NAME" "RANK" "SELECT" "INSERT"
    "PROVENANCE";
  List.iter
    (fun e ->
      Printf.printf "%-10s %-16s %-16s %-10s %s%s\n" e.name e.rank e.select e.insert
        e.provenance
        (match e.aliases with
        | [] -> ""
        | a -> Printf.sprintf "  (aliases: %s)" (String.concat ", " a)))
    entries;
  print_newline ();
  print_endline
    "Ad-hoc compositions are accepted wherever a scheduler name is:\n\
    \  rank=R;select=S[;insert=I][;tie=T]\n\
     with R in upward[:mean|best|worst] | updown[:...] | static-level | bil | oct | \
     het-upward,\n\
     S in eft | cp-pin | dl | bim | oeft | lookahead | crossover[:SEED],\n\
     I in insertion | append, and T in id | ready | seeded:SEED."

let parse_case s =
  match String.lowercase_ascii s with
  | "cholesky" -> Ok E.Case.Cholesky
  | "gauss" | "gauss-elim" -> Ok E.Case.Gauss_elim
  | "random" -> Ok E.Case.Random_graph
  | other -> Error (`Msg (Printf.sprintf "unknown workload %S (cholesky|gauss|random)" other))

let case_arg =
  let print fmt k = Format.pp_print_string fmt (E.Case.kind_name k) in
  Arg.(
    value
    & opt (conv (parse_case, print)) E.Case.Cholesky
    & info [ "workload" ] ~docv:"KIND" ~doc:"Workload kind: cholesky, gauss or random.")

let n_arg =
  Arg.(value & opt int 10 & info [ "n" ] ~docv:"N" ~doc:"Approximate task count.")

let procs_arg =
  Arg.(value & opt int 3 & info [ "p"; "procs" ] ~docv:"P" ~doc:"Processor count.")

let ul_arg =
  Arg.(value & opt float 1.1 & info [ "ul" ] ~docv:"UL" ~doc:"Uncertainty level (>= 1).")

let instance kind n procs ul seed =
  E.Case.instantiate
    (E.Case.make ~kind ~n_target:n ~n_procs:procs ~ul ~seed:(Int64.add 1L seed) ())

let run_gantt kind n procs ul seed =
  let inst = instance kind n procs ul seed in
  List.iter
    (fun (name, h) ->
      let sched = h inst.E.Case.graph inst.E.Case.platform in
      let times = Sched.Simulator.deterministic sched inst.E.Case.platform in
      Printf.printf "%s (makespan %.2f):\n%s\n" name times.Sched.Simulator.makespan
        (Sched.Gantt.render sched times))
    heuristics_with_extras

let run_dot kind n procs ul seed =
  let inst = instance kind n procs ul seed in
  print_string (Dag.Dot.to_dot inst.E.Case.graph)

let run_bounds kind n procs ul seed =
  let inst = instance kind n procs ul seed in
  let rng = Prng.Xoshiro.create (Int64.add 77L seed) in
  let sched =
    Sched.Random_sched.generate ~rng ~graph:inst.E.Case.graph ~n_procs:procs
  in
  let b = Makespan.Bounds.run sched inst.E.Case.platform inst.E.Case.model in
  let engine =
    Makespan.Engine.create ~graph:inst.E.Case.graph ~platform:inst.E.Case.platform
      ~model:inst.E.Case.model
  in
  let classical = Makespan.Engine.eval engine sched in
  let mc =
    Makespan.Montecarlo.run ~rng ~count:20000 sched inst.E.Case.platform inst.E.Case.model
  in
  let open Distribution in
  Printf.printf
    "Kleindorfer-style bracket on a random schedule (%s, %d tasks, %d procs, UL %g):\n"
    (E.Case.kind_name kind) (Dag.Graph.n_tasks inst.E.Case.graph) procs ul;
  Printf.printf "  lower (comonotone maxima):  mean %10.3f  std %8.4f\n"
    (Dist.mean b.Makespan.Bounds.lower) (Dist.std b.Makespan.Bounds.lower);
  Printf.printf "  classical (engine):         mean %10.3f  std %8.4f\n"
    (Dist.mean classical) (Dist.std classical);
  Printf.printf "  Monte Carlo (20000 runs):   mean %10.3f  std %8.4f\n"
    (Empirical.mean mc) (Empirical.std mc);
  Printf.printf "  upper (independent maxima): mean %10.3f  std %8.4f\n"
    (Dist.mean b.Makespan.Bounds.upper) (Dist.std b.Makespan.Bounds.upper);
  Printf.printf "  CDF bracket holds: %b\n"
    (Makespan.Bounds.enclose b (Empirical.to_dist ~points:128 mc))

(* --- evaluation service commands --- *)

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Service bind/connect address.")

let port_arg default =
  Arg.(value & opt int default & info [ "port" ] ~docv:"PORT" ~doc:"Service TCP port.")

let parse_sched_token tok =
  match String.split_on_char ':' tok with
  | "random" :: count :: rest -> (
    match (int_of_string_opt count, rest) with
    | Some count, [] -> Ok (Service.Proto.Random { count; seed = 0L })
    | Some count, [ s ] -> (
      match Int64.of_string_opt s with
      | Some seed -> Ok (Service.Proto.Random { count; seed })
      | None -> Error (`Msg (Printf.sprintf "bad random seed in %S" tok)))
    | _ -> Error (`Msg (Printf.sprintf "bad random spec %S (random:COUNT[:SEED])" tok)))
  | "neighbor" :: rest -> (
    (* trailing integer fields are the move; everything before them is
       the base scheduler name (which may itself contain ':', e.g. a
       seeded tie-break composition) *)
    let bad () =
      Error
        (`Msg (Printf.sprintf "bad neighbor spec %S (neighbor:BASE:TASK:PROC[:AT])" tok))
    in
    let make base task to_ at =
      match Sched.Registry.parse base with
      | Ok e ->
        Ok (Service.Proto.Neighbor { base = e.Sched.Registry.name; task; to_; at })
      | Error msg -> Error (`Msg msg)
    in
    match List.rev rest with
    | c :: b :: a :: (_ :: _ as front) -> (
      let without_at () =
        match (int_of_string_opt b, int_of_string_opt c) with
        | Some task, Some to_ when task >= 0 && to_ >= 0 ->
          make (String.concat ":" (List.rev (a :: front))) task to_ None
        | _ -> bad ()
      in
      match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
      | Some task, Some to_, Some at when task >= 0 && to_ >= 0 && at >= 0 -> (
        (* both readings are syntactically possible when the base's own
           name ends in an integer; prefer TASK:PROC:AT, fall back if
           the shorter base is not a known scheduler *)
        match make (String.concat ":" (List.rev front)) task to_ (Some at) with
        | Ok _ as ok -> ok
        | Error _ -> without_at ())
      | _ -> without_at ())
    | [ c; b; a ] -> (
      match (int_of_string_opt b, int_of_string_opt c) with
      | Some task, Some to_ when task >= 0 && to_ >= 0 -> make a task to_ None
      | _ -> bad ())
    | _ -> bad ())
  | _ -> (
    (* registry name, alias, or rank=...;select=... composition *)
    match Sched.Registry.parse tok with
    | Ok e -> Ok (Service.Proto.Heuristic e.Sched.Registry.name)
    | Error msg -> Error (`Msg msg))

let schedules_arg =
  let parse s =
    List.fold_right
      (fun tok acc ->
        Result.bind acc (fun specs ->
            Result.map (fun spec -> spec :: specs) (parse_sched_token (String.trim tok))))
      (String.split_on_char ',' s)
      (Ok [])
  in
  let print fmt specs =
    Format.pp_print_string fmt
      (String.concat ","
         (List.map
            (function
              | Service.Proto.Heuristic h -> h
              | Service.Proto.Random { count; seed } ->
                Printf.sprintf "random:%d:%Ld" count seed
              | Service.Proto.Neighbor { base; task; to_; at } -> (
                match at with
                | None -> Printf.sprintf "neighbor:%s:%d:%d" base task to_
                | Some a -> Printf.sprintf "neighbor:%s:%d:%d:%d" base task to_ a))
            specs))
  in
  Arg.(
    value
    & opt (conv (parse, print)) [ Service.Proto.Heuristic "HEFT" ]
    & info [ "schedules" ] ~docv:"SPECS"
        ~doc:
          "Comma-separated schedule sources: registry scheduler names (see $(b,repro \
           sched --list)), $(b,rank=R;select=S[;insert=I][;tie=T]) compositions, \
           and/or $(b,random:COUNT[:SEED]) batches.")

let backend_arg =
  Arg.(
    value
    & opt string "classical"
    & info [ "backend" ] ~docv:"NAME"
        ~doc:"Evaluation backend: classical, dodin, spelde or mc (Monte Carlo).")

let slack_arg =
  let parse = function
    | "disjunctive" -> Ok `Disjunctive
    | "precedence" -> Ok `Precedence
    | other -> Error (`Msg (Printf.sprintf "unknown slack mode %S" other))
  in
  let print fmt m =
    Format.pp_print_string fmt
      (match m with `Disjunctive -> "disjunctive" | `Precedence -> "precedence")
  in
  Arg.(
    value
    & opt (conv (parse, print)) `Disjunctive
    & info [ "slack" ] ~docv:"MODE" ~doc:"Slack graph mode: disjunctive or precedence.")

let eval_job workload n procs ul seed backend mc_count mc_seed schedules slack delta
    gamma =
  match Makespan.Engine.backend_of_name ~mc_count ~mc_seed backend with
  | None ->
    prerr_endline ("repro eval: unknown backend " ^ backend);
    Stdlib.exit 2
  | Some backend ->
    {
      Service.Proto.workload =
        Service.Proto.Named { kind = workload; n; procs; seed = Int64.add 1L seed };
      ul;
      backend;
      schedules;
      slack_mode = slack;
      delta;
      gamma;
      deadline_ms = None;
      trace = None;
    }

let run_eval job emit =
  if emit then print_string (Service.Proto.job_to_json job ^ "\n")
  else
    match Service.Proto.eval job with
    | Ok body -> print_string body
    | Error e ->
      prerr_endline ("repro eval: " ^ e);
      Stdlib.exit 1

let eval_cmd =
  let emit_arg =
    Arg.(
      value & flag
      & info [ "emit-request" ]
          ~doc:
            "Print the JSON job body for this evaluation instead of running it \
             (pipe to $(b,curl -d @- http://host:port/eval)).")
  in
  let delta_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "delta" ] ~docv:"D" ~doc:"A(δ) bound override (calibrated if absent).")
  in
  let gamma_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "gamma" ] ~docv:"G" ~doc:"R(γ) bound override (calibrated if absent).")
  in
  let mc_count_arg =
    Arg.(
      value & opt int 10_000
      & info [ "mc-count" ] ~docv:"N" ~doc:"Monte Carlo runs for --backend mc.")
  in
  let mc_seed_arg =
    Arg.(
      value & opt int64 0L
      & info [ "mc-seed" ] ~docv:"S" ~doc:"Monte Carlo seed for --backend mc.")
  in
  Cmd.v
    (Cmd.info "eval"
       ~doc:
         "Evaluate schedules of one case and print the service-format result \
          document (the byte-identical offline twin of POST /eval).")
    Term.(
      const (fun workload n procs ul seed backend mc_count mc_seed schedules slack
                 delta gamma emit moment_depth exact ->
          setup_chain_mode ~exact ~moment_depth;
          run_eval
            (eval_job workload n procs ul seed backend mc_count mc_seed schedules
               slack delta gamma)
            emit)
      $ case_arg $ n_arg $ procs_arg $ ul_arg $ seed_arg $ backend_arg $ mc_count_arg
      $ mc_seed_arg $ schedules_arg $ slack_arg $ delta_arg $ gamma_arg $ emit_arg
      $ moment_depth_arg $ exact_arg)

let serve_cmd =
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N" ~doc:"Job-queue capacity (503 beyond it).")
  in
  let conns_arg =
    Arg.(
      value & opt int 4
      & info [ "conns" ] ~docv:"N" ~doc:"Connection-handler domains.")
  in
  let workers_arg =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Evaluation worker shards: each owns a private job queue, engine \
             cache and slice of the evaluation pool; jobs are consistent-hashed \
             to shards by batch key.")
  in
  let admit_on_conn_arg =
    Arg.(
      value & flag
      & info [ "admit-on-conn" ]
          ~doc:
            "Build job contexts on the connection domains (the pre-fix admission \
             placement). Only for A/B benchmarks of the contention it causes.")
  in
  let grace_arg =
    Arg.(
      value & opt float 5.0
      & info [ "grace" ] ~docv:"SEC"
          ~doc:"Drain grace: max seconds for queued jobs to finish on shutdown.")
  in
  let slow_ms_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Log one stderr line (trace id + stage list) for every request slower \
             than $(docv) milliseconds.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the evaluation daemon: POST /eval (sync), POST /jobs + GET /jobs/:id \
          (async), GET /healthz, GET /metrics (JSON or OpenMetrics), GET \
          /debug/requests (flight recorder). Same-case jobs are batched onto \
          shared engines. SIGINT/SIGTERM drains gracefully.")
    Term.(
      const (fun host port queue conns workers admit_on_conn grace slow_ms ->
          Service.Server.serve_forever
            {
              Service.Server.default_config with
              host;
              port;
              queue_capacity = queue;
              conn_domains = conns;
              workers;
              conn_admit = admit_on_conn;
              drain_grace_s = grace;
              slow_ms;
            })
      $ host_arg $ port_arg 8123 $ queue_arg $ conns_arg $ workers_arg
      $ admit_on_conn_arg $ grace_arg $ slow_ms_arg)

let loadgen_cmd =
  let concurrency_arg =
    Arg.(
      value & opt int 4
      & info [ "concurrency" ] ~docv:"N" ~doc:"Concurrent client connections.")
  in
  let requests_arg =
    Arg.(
      value & opt int 200
      & info [ "requests" ] ~docv:"N" ~doc:"Total synchronous /eval requests.")
  in
  let bench_out_arg =
    Arg.(
      value
      & opt string "BENCH_serve.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Report file (JSON).")
  in
  let arrival_arg =
    let parse s =
      match String.lowercase_ascii s with
      | "closed" -> Ok Service.Loadgen.Closed
      | s -> (
        match String.split_on_char ':' s with
        | [ "poisson"; rate ] -> (
          match float_of_string_opt rate with
          | Some r when r > 0. -> Ok (Service.Loadgen.Poisson r)
          | _ -> Error (`Msg (Printf.sprintf "bad poisson rate %S" rate)))
        | _ -> Error (`Msg (Printf.sprintf "unknown arrival %S (closed|poisson:RATE)" s)))
    in
    let print fmt a =
      Format.pp_print_string fmt
        (match a with
        | Service.Loadgen.Closed -> "closed"
        | Service.Loadgen.Poisson r -> Printf.sprintf "poisson:%g" r)
    in
    Arg.(
      value
      & opt (conv (parse, print)) Service.Loadgen.Closed
      & info [ "arrival" ] ~docv:"MODE"
          ~doc:
            "Arrival discipline: $(b,closed) (back-to-back) or $(b,poisson:RATE) \
             (open loop at RATE req/s; latency measured from scheduled arrival, \
             so backlog shows up as latency — no coordinated omission).")
  in
  let slo_ms_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "slo-ms" ] ~docv:"MS"
          ~doc:
            "Latency budget; the report gains slo_ms/slo_attained (errors count \
             as misses).")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "After the load, send one traced request (traceparent header) and \
             save its Chrome trace from /debug/requests to $(docv).")
  in
  let sweep_arg =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "workers-sweep" ] ~docv:"N,N,..."
          ~doc:
            "Instead of hitting a running server, drive the whole 1→N worker \
             scaling curve in-process: one fresh server per worker count (plus \
             the pre-fix --admit-on-conn baseline), closed-loop load over \
             --keys distinct cases, admit-stage p99 from the metrics snapshot, \
             and a byte-for-byte check of every response against repro eval. \
             --concurrency and --requests apply per point; --host/--port are \
             ignored.")
  in
  let keys_arg =
    Arg.(
      value & opt int 8
      & info [ "keys" ] ~docv:"N"
          ~doc:"Sweep only: distinct cases (batch keys) in the job mix.")
  in
  let task_n_arg =
    Arg.(
      value & opt int 24
      & info [ "task-n" ] ~docv:"N"
          ~doc:"Sweep only: target task count per case (sizes the admit cost).")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Load generator against a running $(b,repro serve): closed-loop or \
          open-loop Poisson arrivals; reports throughput, client latency \
          quantiles, optional SLO attainment and the server's own counters.")
    Term.(
      const
        (fun host port concurrency requests out arrival slo_ms trace_out sweep keys
             task_n ->
          let report =
            match sweep with
            | Some worker_counts ->
              Service.Loadgen.sweep
                {
                  Service.Loadgen.worker_counts;
                  sweep_concurrency = concurrency;
                  sweep_requests = requests;
                  keys;
                  task_n;
                }
            | None ->
              Service.Loadgen.run
                {
                  Service.Loadgen.host;
                  port;
                  concurrency;
                  requests;
                  job = Service.Loadgen.default_job ();
                  arrival;
                  slo_ms;
                  trace_out;
                }
          in
          print_string report;
          let oc = open_out out in
          output_string oc report;
          close_out oc;
          Printf.eprintf "[wrote %s]\n%!" out)
      $ host_arg $ port_arg 8123 $ concurrency_arg $ requests_arg $ bench_out_arg
      $ arrival_arg $ slo_ms_arg $ trace_out_arg $ sweep_arg $ keys_arg $ task_n_arg)

let top_cmd =
  let interval_arg =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SEC" ~doc:"Seconds between frames.")
  in
  let iterations_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "iterations" ] ~docv:"N"
          ~doc:"Render $(docv) frames then exit (default: until killed).")
  in
  let once_arg =
    Arg.(value & flag & info [ "once" ] ~doc:"Render a single frame and exit.")
  in
  let plain_arg =
    Arg.(
      value & flag
      & info [ "plain" ]
          ~doc:"Append frames instead of clearing the screen (pipes, CI logs).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live view of a running $(b,repro serve): throughput, queue depth, \
          engine-cache hit rate, per-stage latency p50/p99 (deltas between \
          frames) and the most recent requests from the flight recorder.")
    Term.(
      const (fun host port interval iterations once plain ->
          let iterations = if once then Some 1 else iterations in
          match
            Service.Top.run
              { Service.Top.host; port; interval_s = interval; iterations; plain }
          with
          | Ok () -> ()
          | Error e ->
            prerr_endline ("repro top: " ^ e);
            Stdlib.exit 1)
      $ host_arg $ port_arg 8123 $ interval_arg $ iterations_arg $ once_arg
      $ plain_arg)

let check_metrics_cmd =
  let input_arg =
    Arg.(
      value
      & pos 0 string "-"
      & info [] ~docv:"FILE"
          ~doc:"OpenMetrics exposition to validate ($(b,-) reads stdin).")
  in
  Cmd.v
    (Cmd.info "check-metrics"
       ~doc:
         "Validate an OpenMetrics text exposition (as served by GET \
          /metrics?format=openmetrics) against the line grammar: typed families, \
          no interleaving, cumulative buckets, exemplar syntax, terminal # EOF. \
          Exits 1 with the offending line on failure.")
    Term.(
      const (fun input ->
          let text =
            if input = "-" then In_channel.input_all In_channel.stdin
            else In_channel.with_open_bin input In_channel.input_all
          in
          match Obs.Openmetrics.validate text with
          | Ok () -> print_endline "ok"
          | Error e ->
            prerr_endline ("check-metrics: " ^ e);
            Stdlib.exit 1)
      $ input_arg)

(* --- robustness-aware search: repro optimize --- *)

let flat_sched sched =
  String.concat "|"
    (List.filter (fun l -> l <> "") (String.split_on_char '\n' (Sched.Schedule.to_string sched)))

(* Build the spec string first and parse it like any other anneal:...
   name, so the spec the command reports is — by construction — the one
   that reproduces this exact run through the registry. *)
let optimize_spec ~objective ~steps ~opt_seed ~restarts ~policy ~t0 ~alpha ~target ~window
    ~init ~mix ~max_cone ~delta ~gamma ~axis ~ul =
  let parts = ref [] in
  let add fmt = Printf.ksprintf (fun s -> parts := s :: !parts) fmt in
  add "obj=%s" objective;
  add "steps=%d" steps;
  add "seed=%Ld" opt_seed;
  if restarts <> 0 then add "restarts=%d" restarts;
  add "policy=%s" policy;
  Option.iter (fun v -> add "t0=%.17g" v) t0;
  Option.iter (fun v -> add "alpha=%.17g" v) alpha;
  Option.iter (fun v -> add "target=%.17g" v) target;
  Option.iter (fun v -> add "window=%d" v) window;
  (* composed inits are spliced in as their component keys *)
  if String.contains init '=' then
    List.iter
      (fun p -> if p <> "" then add "%s" p)
      (String.split_on_char ','
         (String.map (fun c -> if c = ';' then ',' else c) init))
  else add "init=%s" init;
  add "mix=%s" mix;
  Option.iter (fun v -> add "max-cone=%d" v) max_cone;
  Option.iter (fun v -> add "delta=%.17g" v) delta;
  Option.iter (fun v -> add "gamma=%.17g" v) gamma;
  if axis = "slack" then add "axis=slack";
  add "ul=%.17g" ul;
  Search.Anneal.spec_prefix ^ String.concat ";" (List.rev !parts)

let json_str s = "\"" ^ Obs.Span.json_escape s ^ "\""

let optimize_summary_json ~kind ~n ~procs ~ul ~case_seed ~spec ~(config : Search.Anneal.config)
    ~(outcome : Search.Anneal.outcome) ~best_heuristic ~verified =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let stats = outcome.Search.Anneal.stats in
  let best_eval = outcome.Search.Anneal.best_eval in
  let best_name, best_h_obj = best_heuristic in
  add "{\"case\":{\"kind\":%s,\"n\":%d,\"procs\":%d,\"ul\":%.17g,\"seed\":%Ld},"
    (json_str (E.Case.kind_name kind)) n procs ul case_seed;
  add "\"objective\":%s,\"spec\":%s,"
    (json_str (Search.Objective.name config.Search.Anneal.objective))
    (json_str spec);
  add "\"delta\":%.17g,\"gamma\":%.17g,"
    outcome.Search.Anneal.bounds.Search.Objective.delta
    outcome.Search.Anneal.bounds.Search.Objective.gamma;
  add "\"init\":{\"scheduler\":%s,\"objective\":%.17g},"
    (json_str config.Search.Anneal.init)
    outcome.Search.Anneal.init_objective;
  add
    "\"best\":{\"objective\":%.17g,\"expected_makespan\":%.17g,\"makespan_std\":%.17g,\
     \"slack_total\":%.17g,\"schedule\":%s},"
    outcome.Search.Anneal.best_objective
    (Distribution.Dist.mean best_eval.Makespan.Engine.makespan)
    (Distribution.Dist.std best_eval.Makespan.Engine.makespan)
    best_eval.Makespan.Engine.slack.Sched.Slack.total
    (json_str (flat_sched outcome.Search.Anneal.best));
  add "\"best_heuristic\":{\"name\":%s,\"objective\":%.17g}," (json_str best_name) best_h_obj;
  add
    "\"stats\":{\"steps\":%d,\"probes\":%d,\"accepted\":%d,\"infeasible\":%d,\
     \"priority_moves\":%d,\"restarts\":%d,\"reevals\":%d,\"reeval_incremental\":%d,\
     \"reeval_full\":%d,\"full_evals\":%d,\"incremental_fraction\":%.17g},"
    stats.Search.Anneal.steps_done stats.Search.Anneal.probes stats.Search.Anneal.accepted
    stats.Search.Anneal.infeasible stats.Search.Anneal.priority_moves
    stats.Search.Anneal.restarts_done stats.Search.Anneal.reevals
    stats.Search.Anneal.reeval_incremental stats.Search.Anneal.reeval_full
    stats.Search.Anneal.full_evals
    (Search.Anneal.incremental_fraction stats);
  add "\"verified_bitwise\":%b,\"interrupted\":%b,\"frontier_size\":%d}" verified
    outcome.Search.Anneal.interrupted
    (Search.Archive.size outcome.Search.Anneal.frontier);
  Buffer.contents b

let run_optimize ctx kind n procs ul spec =
  match Search.Anneal.parse_spec spec with
  | Error e ->
    prerr_endline ("repro optimize: " ^ e);
    2
  | Ok (config, _spec_ul) ->
    let inst = instance kind n procs ul ctx.seed in
    let graph = inst.E.Case.graph and platform = inst.E.Case.platform in
    let engine = Makespan.Engine.create ~graph ~platform ~model:inst.E.Case.model in
    let init_sched =
      match Sched.Registry.parse config.Search.Anneal.init with
      | Ok e -> e.Sched.Registry.run graph platform
      | Error e ->
        prerr_endline ("repro optimize: init scheduler: " ^ e);
        Stdlib.exit 2
    in
    let outcome =
      E.Stop.with_scope (fun scope ->
          Search.Anneal.run
            ~should_stop:(fun () -> E.Stop.requested scope)
            ~engine ~init:init_sched config)
    in
    let bounds = outcome.Search.Anneal.bounds in
    let objective ev = Search.Objective.value config.Search.Anneal.objective bounds ev in
    (* heuristic baselines under the same objective and bounds *)
    let baselines =
      List.map
        (fun e ->
          let sched = e.Sched.Registry.run graph platform in
          let ev = Makespan.Engine.analyze engine sched in
          (e.Sched.Registry.name, ev, objective ev))
        Sched.Registry.entries
    in
    let best_name, _, best_h_obj =
      List.fold_left
        (fun ((_, _, bo) as best) ((_, _, o) as cand) -> if o < bo then cand else best)
        (List.hd baselines) (List.tl baselines)
    in
    let fresh = Makespan.Engine.analyze engine outcome.Search.Anneal.best in
    let verified =
      Int64.bits_of_float (objective fresh)
      = Int64.bits_of_float outcome.Search.Anneal.best_objective
    in
    let canonical =
      Search.Anneal.canonical_spec config ~ul:inst.E.Case.case.E.Case.ul
    in
    let stats = outcome.Search.Anneal.stats in
    Printf.printf "optimize: %s %d tasks / %d procs / UL %g (case seed %Ld)\n"
      (E.Case.kind_name kind)
      (Dag.Graph.n_tasks graph)
      procs ul (Int64.add 1L ctx.seed);
    Printf.printf "objective: %s  (delta %.6g, gamma %.8g)\n"
      (Search.Objective.name config.Search.Anneal.objective)
      bounds.Search.Objective.delta bounds.Search.Objective.gamma;
    Printf.printf "spec: %s\n\n" canonical;
    Printf.printf "heuristic baselines:\n";
    Printf.printf "  %-28s %12s %12s %14s\n" "scheduler" "E(M)" "sigma_M" "objective";
    List.iter
      (fun (name, ev, o) ->
        Printf.printf "  %-28s %12.4f %12.4f %14.6f\n" name
          (Distribution.Dist.mean ev.Makespan.Engine.makespan)
          (Distribution.Dist.std ev.Makespan.Engine.makespan)
          o)
      baselines;
    Printf.printf "  best heuristic: %s (objective %.6f)\n\n" best_name best_h_obj;
    Printf.printf "search: %d steps, %d probes, %d accepted, %d infeasible draws, \
                   %d priority rebuilds, %d restarts\n"
      stats.Search.Anneal.steps_done stats.Search.Anneal.probes
      stats.Search.Anneal.accepted stats.Search.Anneal.infeasible
      stats.Search.Anneal.priority_moves stats.Search.Anneal.restarts_done;
    Printf.printf
      "incremental re-evaluation: %.1f%% of evaluation work (%d reevals: %d incremental, \
       %d full; %d fresh sweeps)\n"
      (100. *. Search.Anneal.incremental_fraction stats)
      stats.Search.Anneal.reevals stats.Search.Anneal.reeval_incremental
      stats.Search.Anneal.reeval_full stats.Search.Anneal.full_evals;
    let best_eval = outcome.Search.Anneal.best_eval in
    Printf.printf "initial objective (%s): %.6f\n" config.Search.Anneal.init
      outcome.Search.Anneal.init_objective;
    Printf.printf "best objective: %.6f  (E(M) %.4f, sigma_M %.4f, slack %.4f)\n"
      outcome.Search.Anneal.best_objective
      (Distribution.Dist.mean best_eval.Makespan.Engine.makespan)
      (Distribution.Dist.std best_eval.Makespan.Engine.makespan)
      best_eval.Makespan.Engine.slack.Sched.Slack.total;
    let rel =
      if best_h_obj <> 0. then
        100. *. (best_h_obj -. outcome.Search.Anneal.best_objective) /. Float.abs best_h_obj
      else nan
    in
    Printf.printf "vs best heuristic: %+.2f%%\n" rel;
    Printf.printf "objective bitwise-equal to fresh analyze: %b\n" verified;
    if outcome.Search.Anneal.interrupted then
      Printf.printf "interrupted: partial result (stop requested mid-search)\n";
    let frontier = outcome.Search.Anneal.frontier in
    Printf.printf "\nfrontier (E(M) vs %s), %d points:\n"
      (match Search.Archive.axis frontier with `Sigma -> "sigma_M" | `Slack -> "slack")
      (Search.Archive.size frontier);
    Printf.printf "  %6s %12s %12s %12s %14s\n" "step" "E(M)" "sigma_M" "slack" "objective";
    List.iter
      (fun (p : Search.Archive.point) ->
        Printf.printf "  %6d %12.4f %12.4f %12.4f %14.6f\n" p.Search.Archive.step
          p.Search.Archive.em p.Search.Archive.sigma p.Search.Archive.slack
          p.Search.Archive.objective)
      (Search.Archive.points frontier);
    Printf.printf "\nbest schedule:\n%s" (Sched.Schedule.to_string outcome.Search.Anneal.best);
    save ctx "frontier.csv" (Search.Archive.to_csv frontier);
    save ctx "frontier.json" (Search.Archive.to_json frontier);
    save ctx "summary.json"
      (optimize_summary_json ~kind ~n ~procs ~ul ~case_seed:(Int64.add 1L ctx.seed)
         ~spec:canonical ~config ~outcome
         ~best_heuristic:(best_name, best_h_obj)
         ~verified);
    if outcome.Search.Anneal.interrupted then 130 else 0

(* Returns the process exit code: 0 on full success, 2 when some case
   failed permanently (results above exclude it), 130 when a stop was
   requested (SIGINT/SIGTERM) — checkpoints and manifest are saved, so
   rerunning resumes exactly. *)
let run_campaign limit schedulers ctx =
  let dir = Option.value ctx.out ~default:"repro-campaign" in
  let cases =
    Option.map
      (fun k -> List.filteri (fun i _ -> i < k) (E.Case.paper_cases ()))
      limit
  in
  match
    E.Campaign.run ?domains:ctx.domains ~scale:ctx.scale ?schedulers ~dir ?cases ()
  with
  | exception E.Campaign.Interrupted ->
    prerr_endline
      "campaign: stop requested; completed cases are checkpointed — rerun to resume";
    130
  | t ->
    print_string (E.Campaign.render t);
    print_newline ();
    let results =
      (* reuse the §VII in-text computation over campaign rows *)
      List.map
        (fun (r : E.Campaign.case_result) ->
          {
            E.Runner.instance = E.Case.instantiate r.E.Campaign.case;
            delta = 0.;
            gamma = 1.;
            sources = r.E.Campaign.sources;
            rows = r.E.Campaign.rows;
          })
        t.E.Campaign.results
    in
    if results <> [] then
      print_string (E.Intext.render_rel_prob (E.Intext.rel_prob_vs_std results));
    if t.E.Campaign.failures = [] then 0 else 2

let run_all ctx =
  let sep () = print_string "\n======================================================\n\n" in
  run_fig1 ctx;
  sep ();
  run_fig2 ctx;
  sep ();
  run_fig_corr E.Fig_corr.fig3 "fig3" ctx;
  sep ();
  run_fig_corr E.Fig_corr.fig4 "fig4" ctx;
  sep ();
  run_fig_corr E.Fig_corr.fig5 "fig5" ctx;
  sep ();
  run_fig6 ctx;
  sep ();
  run_fig7 ctx;
  sep ();
  run_fig8 ctx;
  sep ();
  run_fig9 ctx;
  sep ();
  run_methods ctx;
  sep ();
  run_ablation ctx

let ctx_term =
  Term.(
    const (fun scale domains seed out verbose trace metrics progress fault
               moment_depth exact ->
        setup_logging (List.length verbose);
        if trace <> None then Obs.Span.set_enabled true;
        if metrics <> None then Obs.Metrics.set_enabled true;
        if progress then Obs.Progress.set_enabled true;
        Option.iter (fun spec -> Fault.configure ~spec) fault;
        setup_chain_mode ~exact ~moment_depth;
        { scale; domains; seed; out; trace; metrics })
    $ scale_arg $ domains_arg $ seed_arg $ out_arg $ verbose_arg $ trace_arg
    $ metrics_arg $ progress_arg $ fault_arg $ moment_depth_arg $ exact_arg)

(* Telemetry sinks flush once, after the command body: the trace file
   holds every span of the run, the metrics file the merged registry
   (counters/gauges/histograms + span summary + phase GC reports). *)
let write_sink path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  (* stderr, so stdout stays bit-identical with sinks on and off *)
  Printf.eprintf "[wrote %s]\n%!" path

let finalize ctx =
  Option.iter (fun path -> write_sink path (Obs.Report.json ())) ctx.metrics;
  Option.iter (fun path -> write_sink path (Obs.Span.export_chrome ())) ctx.trace

let cmd name doc f =
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const (fun ctx ->
          f ctx;
          finalize ctx)
      $ ctx_term)

let case_cmd name doc f =
  Cmd.v (Cmd.info name ~doc)
    Term.(const f $ case_arg $ n_arg $ procs_arg $ ul_arg $ seed_arg)

let limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "limit" ] ~docv:"N"
        ~doc:"Run only the first $(docv) paper cases (CI / smoke testing).")

let schedulers_arg =
  let parse s =
    let toks =
      List.filter (fun t -> t <> "") (List.map String.trim (String.split_on_char ',' s))
    in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | t :: rest -> (
        match Sched.Registry.parse t with
        | Ok _ -> go (t :: acc) rest
        | Error msg -> Error (`Msg msg))
    in
    go [] toks
  in
  let print fmt l = Format.pp_print_string fmt (String.concat "," l) in
  Arg.(
    value
    & opt (some (conv (parse, print))) None
    & info [ "schedulers" ] ~docv:"NAMES"
        ~doc:
          "Comma-separated heuristic schedulers swept next to the random batch: registry \
           names (see $(b,repro sched --list)) or $(b,rank=R;select=S) compositions. \
           Default: HEFT,BIL,Hyb.BMCT.")

let campaign_cmd =
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Checkpointed Fig. 6 sweep: per-case CSVs plus a campaign.json provenance \
          manifest in --out (default repro-campaign/), crash-safe and resumable. Exits 2 \
          if a case failed permanently, 130 on SIGINT/SIGTERM (resume by rerunning).")
    Term.(
      const (fun ctx limit schedulers ->
          let code = run_campaign limit schedulers ctx in
          finalize ctx;
          if code <> 0 then Stdlib.exit code)
      $ ctx_term $ limit_arg $ schedulers_arg)

let sched_cmd =
  let list_arg =
    Arg.(
      value & flag
      & info [ "list" ]
          ~doc:"List every registered scheduler (name, components, provenance).")
  in
  Cmd.v
    (Cmd.info "sched"
       ~doc:
         "Inspect the scheduler registry: names, component decomposition \
          (rank/select/insert) and provenance, plus the composition grammar.")
    Term.(const (fun _list -> run_sched_list ()) $ list_arg)

let optimize_cmd =
  let objective_arg =
    Arg.(
      value & opt string "sigma_m"
      & info [ "objective" ] ~docv:"OBJ"
          ~doc:
            "Objective to minimize: $(b,makespan), $(b,sigma_m), $(b,entropy), \
             $(b,slack), $(b,slack_std), $(b,lateness), $(b,a_delta), $(b,r_gamma) or \
             $(b,blend:LAMBDA) (E(M) + LAMBDA*sigma_M). Better-when-larger metrics are \
             negated internally.")
  in
  let steps_arg =
    Arg.(
      value & opt int 400
      & info [ "steps" ] ~docv:"N" ~doc:"Total probe budget (split across restarts).")
  in
  let opt_seed_arg =
    Arg.(
      value & opt int64 0L
      & info [ "opt-seed" ] ~docv:"SEED"
          ~doc:"Search seed (SplitMix64 root); runs are byte-reproducible per seed.")
  in
  let restarts_arg =
    Arg.(
      value & opt int 0
      & info [ "restarts" ] ~docv:"R" ~doc:"Extra runs re-seeded from the incumbent best.")
  in
  let policy_arg =
    Arg.(
      value & opt string "metropolis"
      & info [ "policy" ] ~docv:"P"
          ~doc:
            "Acceptance policy: $(b,hill) (strict improvements), $(b,metropolis) \
             (geometric cooling) or $(b,adaptive) (acceptance-rate-steered cooling).")
  in
  let t0_arg =
    Arg.(
      value & opt (some float) None
      & info [ "t0" ] ~docv:"T"
          ~doc:"Initial temperature (default: 5% of the initial objective magnitude).")
  in
  let alpha_arg =
    Arg.(
      value & opt (some float) None
      & info [ "alpha" ] ~docv:"A"
          ~doc:"Geometric cooling factor per step (default: 1000x decay over the run).")
  in
  let target_arg =
    Arg.(
      value & opt (some float) None
      & info [ "target" ] ~docv:"RATE"
          ~doc:"Adaptive cooling: steer the acceptance rate toward $(docv) (default 0.25).")
  in
  let window_arg =
    Arg.(
      value & opt (some int) None
      & info [ "window" ] ~docv:"N" ~doc:"Adaptive cooling correction window (default 32).")
  in
  let init_arg =
    Arg.(
      value & opt string "HEFT"
      & info [ "init" ] ~docv:"SCHED"
          ~doc:
            "Initial schedule: a registry scheduler name or a \
             $(b,rank=R;select=S) composition.")
  in
  let mix_arg =
    Arg.(
      value & opt string "12:3:1"
      & info [ "mix" ] ~docv:"R:S:P"
          ~doc:
            "Move-generator weights: one-task reassigns : task swaps : priority \
             perturbations replayed through the list scheduler.")
  in
  let max_cone_arg =
    Arg.(
      value & opt (some int) None
      & info [ "max-cone" ] ~docv:"N"
          ~doc:"Dirty-cone cutoff forwarded to the incremental engine session.")
  in
  let delta_arg =
    Arg.(
      value & opt (some float) None
      & info [ "delta" ] ~docv:"D"
          ~doc:"A(delta) bound override (default: calibrated from the initial schedule).")
  in
  let gamma_arg =
    Arg.(
      value & opt (some float) None
      & info [ "gamma" ] ~docv:"G" ~doc:"R(gamma) bound override (same convention).")
  in
  let frontier_arg =
    let parse = function
      | "sigma" -> Ok "sigma"
      | "slack" -> Ok "slack"
      | s -> Error (`Msg (Printf.sprintf "unknown frontier axis %S (sigma|slack)" s))
    in
    Arg.(
      value
      & opt (conv (parse, Format.pp_print_string)) "sigma"
      & info [ "frontier" ] ~docv:"AXIS"
          ~doc:
            "Pareto frontier y-axis: $(b,sigma) (E(M) vs sigma_M) or $(b,slack) \
             (E(M) vs total slack — the slack-injecting variant quantifying the \
             paper's slack-conflicts-with-makespan trade).")
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:
         "Robustness-aware stochastic schedule optimization: simulated \
          annealing / hill climbing over reassign, swap and priority-perturbation \
          moves, probed through the incremental evaluation engine. Prints heuristic \
          baselines, the Pareto frontier and the canonical $(b,anneal:...) spec that \
          replays the run; $(b,--out) writes frontier.csv, frontier.json and \
          summary.json. Exits 130 on SIGINT/SIGTERM with the partial frontier.")
    Term.(
      const
        (fun ctx kind n procs ul objective steps opt_seed restarts policy t0 alpha target
             window init mix max_cone delta gamma axis ->
          let spec =
            optimize_spec ~objective ~steps ~opt_seed ~restarts ~policy ~t0 ~alpha ~target
              ~window ~init ~mix ~max_cone ~delta ~gamma ~axis ~ul
          in
          let code = run_optimize ctx kind n procs ul spec in
          finalize ctx;
          if code <> 0 then Stdlib.exit code)
      $ ctx_term $ case_arg $ n_arg $ procs_arg $ ul_arg $ objective_arg $ steps_arg
      $ opt_seed_arg $ restarts_arg $ policy_arg $ t0_arg $ alpha_arg $ target_arg
      $ window_arg $ init_arg $ mix_arg $ max_cone_arg $ delta_arg $ gamma_arg
      $ frontier_arg)

let () =
  let cmds =
    [
      cmd "fig1" "Precision of the independence assumption vs graph size." run_fig1;
      cmd "fig2" "Calculated vs experimental makespan density." run_fig2;
      cmd "fig3" "Correlation matrix: Cholesky 10 tasks / 3 procs / UL 1.01."
        (run_fig_corr E.Fig_corr.fig3 "fig3");
      cmd "fig4" "Correlation matrix: random 30 tasks / 8 procs / UL 1.01."
        (run_fig_corr E.Fig_corr.fig4 "fig4");
      cmd "fig5" "Correlation matrix: Gaussian elimination 103 tasks / 16 procs / UL 1.1."
        (run_fig_corr E.Fig_corr.fig5 "fig5");
      cmd "fig6" "Mean/std Pearson matrix over the 24 paper cases (+ §VII in-text)."
        run_fig6;
      cmd "fig7" "Special multi-modal distribution vs matching normal." run_fig7;
      cmd "fig8" "CLT convergence of n-fold self-sums." run_fig8;
      cmd "fig9" "Slack vs robustness on a join graph." run_fig9;
      cmd "methods" "Classical/Dodin/Spelde accuracy against Monte Carlo." run_methods;
      cmd "ablation" "Extension: variable-UL correlation shift + RobustHEFT sweep."
        run_ablation;
      campaign_cmd;
      sched_cmd;
      optimize_cmd;
      cmd "all" "Every figure and in-text result in sequence." run_all;
      case_cmd "gantt" "Gantt charts of all heuristics on a chosen workload." run_gantt;
      case_cmd "dot" "Export a workload DAG as Graphviz." run_dot;
      case_cmd "bounds" "Kleindorfer-style bracket vs Monte Carlo on a random schedule."
        run_bounds;
      eval_cmd;
      serve_cmd;
      loadgen_cmd;
      top_cmd;
      check_metrics_cmd;
    ]
  in
  let info =
    Cmd.info "repro" ~version:Service.Build_info.version
      ~doc:
        "Reproduction of Canon & Jeannot, 'A Comparison of Robustness Metrics for \
         Scheduling DAGs on Heterogeneous Systems' (HeteroPar/CLUSTER 2007)."
  in
  exit (Cmd.eval (Cmd.group info cmds))
